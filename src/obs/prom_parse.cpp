#include "obs/prom_parse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace wm::obs {

namespace {

// Mirrors the formatter in metrics.cpp so a parsed gauge re-exports to the
// same bytes ("%.17g" round-trips any double through text exactly).
std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& line,
                       const std::string& why) {
  throw Error("prometheus parse error at line " + std::to_string(line_no) +
              " (" + why + "): " + line);
}

// Inverse of metrics.cpp escape_help: \\ -> backslash, \n -> newline.
std::string unescape_help(std::size_t line_no, const std::string& line,
                          const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '\\') {
      out.push_back(v[i]);
      continue;
    }
    if (i + 1 >= v.size()) fail(line_no, line, "dangling backslash in HELP");
    ++i;
    if (v[i] == '\\') {
      out.push_back('\\');
    } else if (v[i] == 'n') {
      out.push_back('\n');
    } else {
      fail(line_no, line, "bad HELP escape");
    }
  }
  return out;
}

// Inverse of metrics.cpp escape_label_value: \\, \", \n.
std::string unescape_label_value(std::size_t line_no, const std::string& line,
                                 const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '\\') {
      out.push_back(v[i]);
      continue;
    }
    if (i + 1 >= v.size()) fail(line_no, line, "dangling backslash in label");
    ++i;
    if (v[i] == '\\' || v[i] == '"') {
      out.push_back(v[i]);
    } else if (v[i] == 'n') {
      out.push_back('\n');
    } else {
      fail(line_no, line, "bad label escape");
    }
  }
  return out;
}

std::uint64_t parse_u64(std::size_t line_no, const std::string& line,
                        const std::string& s) {
  if (s.empty()) fail(line_no, line, "empty integer");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') {
    fail(line_no, line, "bad unsigned integer '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::int64_t parse_i64(std::size_t line_no, const std::string& line,
                       const std::string& s) {
  if (s.empty()) fail(line_no, line, "empty integer");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    fail(line_no, line, "bad integer '" + s + "'");
  }
  return static_cast<std::int64_t>(v);
}

double parse_f64(std::size_t line_no, const std::string& line,
                 const std::string& s) {
  if (s.empty()) fail(line_no, line, "empty number");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    fail(line_no, line, "bad number '" + s + "'");
  }
  return v;
}

// Splits `name{k="v",...}` into labels; `rest` starts just after '{'.
std::vector<std::pair<std::string, std::string>> parse_labels(
    std::size_t line_no, const std::string& line, const std::string& body) {
  std::vector<std::pair<std::string, std::string>> labels;
  std::size_t i = 0;
  while (i < body.size()) {
    const std::size_t eq = body.find('=', i);
    if (eq == std::string::npos || eq + 1 >= body.size() || body[eq + 1] != '"') {
      fail(line_no, line, "expected key=\"value\" label");
    }
    const std::string key = body.substr(i, eq - i);
    // Find the closing quote, honoring backslash escapes.
    std::size_t j = eq + 2;
    std::string raw;
    while (j < body.size() && body[j] != '"') {
      if (body[j] == '\\') {
        if (j + 1 >= body.size()) fail(line_no, line, "dangling backslash");
        raw.push_back(body[j]);
        raw.push_back(body[j + 1]);
        j += 2;
      } else {
        raw.push_back(body[j]);
        ++j;
      }
    }
    if (j >= body.size()) fail(line_no, line, "unterminated label value");
    labels.emplace_back(key, unescape_label_value(line_no, line, raw));
    ++j;  // past the closing quote
    if (j < body.size()) {
      if (body[j] != ',') fail(line_no, line, "expected ',' between labels");
      ++j;
    }
    i = j;
  }
  return labels;
}

}  // namespace

HistogramSnapshot PromHistogram::to_snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds;
  s.buckets.resize(bounds.size() + 1);
  std::uint64_t prev = 0;
  for (std::size_t b = 0; b < cumulative.size(); ++b) {
    s.buckets[b] = cumulative[b] - prev;
    prev = cumulative[b];
  }
  s.buckets.back() = count - prev;  // overflow (+Inf minus last finite)
  s.count = count;
  s.sum = sum;
  // Exposition text drops the true observed max; the top finite bound is the
  // tightest recoverable stand-in once anything landed above it.
  s.max = bounds.empty() ? 0 : bounds.back();
  return s;
}

PromDump parse_prometheus_text(const std::string& text) {
  PromDump dump;

  enum class Kind { kNone, kCounter, kGauge, kHistogram };
  Kind kind = Kind::kNone;
  std::string current;       // metric name from the active # TYPE line
  std::string pending_help;  // HELP seen for `current` before its TYPE
  std::string help_name;
  PromHistogram* hist = nullptr;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line.rfind("# HELP ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) fail(line_no, line, "HELP without text");
      help_name = line.substr(7, sp - 7);
      pending_help = unescape_help(line_no, line, line.substr(sp + 1));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) fail(line_no, line, "TYPE without kind");
      current = line.substr(7, sp - 7);
      const std::string k = line.substr(sp + 1);
      const std::string help =
          help_name == current ? pending_help : std::string();
      pending_help.clear();
      help_name.clear();
      hist = nullptr;
      if (k == "counter") {
        kind = Kind::kCounter;
        dump.counters[current].help = help;
      } else if (k == "gauge") {
        // Plain gauge vs info resolves at the sample line; stash the help.
        kind = Kind::kGauge;
        pending_help = help;
        help_name = current;
      } else if (k == "histogram") {
        kind = Kind::kHistogram;
        hist = &dump.histograms[current];
        hist->help = help;
      } else {
        fail(line_no, line, "unknown TYPE kind '" + k + "'");
      }
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal, ignored

    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) fail(line_no, line, "no value");
    const std::string name = line.substr(0, name_end);

    switch (kind) {
      case Kind::kNone:
        fail(line_no, line, "sample before any # TYPE");
      case Kind::kCounter: {
        if (name != current) fail(line_no, line, "name mismatch vs TYPE");
        if (line[name_end] != ' ') fail(line_no, line, "labeled counter");
        dump.counters[current].value =
            parse_u64(line_no, line, line.substr(name_end + 1));
        break;
      }
      case Kind::kGauge: {
        if (name != current) fail(line_no, line, "name mismatch vs TYPE");
        const std::string help = help_name == current ? pending_help : "";
        if (line[name_end] == '{') {
          // Info metric: name{k="v",...} 1
          const std::size_t close = line.rfind('}');
          if (close == std::string::npos || close < name_end) {
            fail(line_no, line, "unterminated label set");
          }
          if (line.substr(close) != "} 1") {
            fail(line_no, line, "info sample must be '} 1'");
          }
          auto& info = dump.infos[current];
          info.labels = parse_labels(
              line_no, line, line.substr(name_end + 1, close - name_end - 1));
          info.help = help;
        } else {
          auto& g = dump.gauges[current];
          g.value = parse_f64(line_no, line, line.substr(name_end + 1));
          g.help = help;
        }
        break;
      }
      case Kind::kHistogram: {
        if (hist == nullptr) fail(line_no, line, "bucket outside histogram");
        if (name == current + "_bucket") {
          if (line[name_end] != '{') fail(line_no, line, "bucket needs le");
          const std::size_t close = line.find('}', name_end);
          if (close == std::string::npos) {
            fail(line_no, line, "unterminated bucket labels");
          }
          const auto labels = parse_labels(
              line_no, line, line.substr(name_end + 1, close - name_end - 1));
          if (labels.size() != 1 || labels[0].first != "le") {
            fail(line_no, line, "bucket must have exactly le");
          }
          if (close + 2 > line.size() || line[close + 1] != ' ') {
            fail(line_no, line, "bucket without count");
          }
          const std::uint64_t cum =
              parse_u64(line_no, line, line.substr(close + 2));
          if (labels[0].second == "+Inf") {
            hist->count = cum;
          } else {
            const std::int64_t bound =
                parse_i64(line_no, line, labels[0].second);
            if (!hist->bounds.empty() && bound <= hist->bounds.back()) {
              fail(line_no, line, "bucket bounds not ascending");
            }
            if (!hist->cumulative.empty() && cum < hist->cumulative.back()) {
              fail(line_no, line, "bucket counts not cumulative");
            }
            hist->bounds.push_back(bound);
            hist->cumulative.push_back(cum);
          }
        } else if (name == current + "_sum") {
          if (line[name_end] != ' ') fail(line_no, line, "labeled _sum");
          hist->sum = parse_i64(line_no, line, line.substr(name_end + 1));
        } else if (name == current + "_count") {
          if (line[name_end] != ' ') fail(line_no, line, "labeled _count");
          const std::uint64_t c =
              parse_u64(line_no, line, line.substr(name_end + 1));
          if (c != hist->count) {
            fail(line_no, line, "_count disagrees with +Inf bucket");
          }
          if (!hist->cumulative.empty() && hist->cumulative.back() > c) {
            fail(line_no, line, "cumulative buckets exceed _count");
          }
        } else {
          fail(line_no, line, "unexpected histogram sample '" + name + "'");
        }
        break;
      }
    }
  }
  return dump;
}

namespace {

// Mirrors metrics.cpp escape_label_value / escape_help exactly.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void emit_help(std::ostringstream& os, const std::string& name,
               const std::string& help) {
  if (!help.empty()) os << "# HELP " << name << " " << escape_help(help) << "\n";
}

}  // namespace

std::string to_prometheus_text(const PromDump& dump) {
  std::ostringstream os;
  for (const auto& [name, sample] : dump.counters) {
    emit_help(os, name, sample.help);
    os << "# TYPE " << name << " counter\n";
    os << name << " " << sample.value << "\n";
  }
  for (const auto& [name, sample] : dump.gauges) {
    emit_help(os, name, sample.help);
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << format_double(sample.value) << "\n";
  }
  for (const auto& [name, sample] : dump.infos) {
    emit_help(os, name, sample.help);
    os << "# TYPE " << name << " gauge\n";
    os << name << "{";
    bool first = true;
    for (const auto& [key, value] : sample.labels) {
      os << (first ? "" : ",") << key << "=\"" << escape_label_value(value)
         << "\"";
      first = false;
    }
    os << "} 1\n";
  }
  for (const auto& [name, h] : dump.histograms) {
    emit_help(os, name, h.help);
    os << "# TYPE " << name << " histogram\n";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << name << "_bucket{le=\"" << h.bounds[b] << "\"} " << h.cumulative[b]
         << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum " << h.sum << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace wm::obs

// Build/runtime identity for a serving process.
//
// Every /metrics scrape should say *which* binary answered: the ISA path
// the kernels were compiled for, the thread budget it runs with, and the
// repo version — otherwise a fleet of heterogeneous replicas is
// indistinguishable in dashboards.
#pragma once

#include <string>

namespace wm::obs {

class Registry;

/// Repo version baked at compile time.
inline constexpr const char kBuildVersion[] = "0.8.0";

/// Compile-time ISA path of the widest tensor kernels in this binary
/// ("avx512vnni", "avx512", "avx2", "avx", or "scalar").
const char* build_isa();

/// Effective worker-thread budget: WM_THREADS if set, else hardware
/// concurrency.
int build_threads();

/// Registers the `wm_build_info{isa=...,threads=...,version=...} 1` info
/// metric in `registry`. Idempotent; called by HttpExporter so every scrape
/// surface carries it.
void register_build_info(Registry& registry);

}  // namespace wm::obs

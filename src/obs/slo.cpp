#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace wm::obs {

namespace {

// Per-kind Perfetto counter tracks; trace_counter() stores the pointer, so
// these must be string literals, keyed by kind rather than rule name.
const char* burn_track(SloKind kind) {
  switch (kind) {
    case SloKind::kAvailability:
      return "slo.availability.burn";
    case SloKind::kLatencyP99:
      return "slo.latency_p99.burn";
    case SloKind::kRiskCeiling:
      return "slo.risk_ceiling.burn";
    case SloKind::kCoverageFloor:
      return "slo.coverage_floor.burn";
  }
  return "slo.unknown.burn";
}

bool is_budget_kind(SloKind kind) {
  return kind == SloKind::kAvailability || kind == SloKind::kLatencyP99;
}

void cap(std::deque<double>& d, std::size_t n) {
  while (d.size() > n) d.pop_front();
}

}  // namespace

const char* slo_kind_name(SloKind kind) {
  switch (kind) {
    case SloKind::kAvailability:
      return "availability";
    case SloKind::kLatencyP99:
      return "latency_p99";
    case SloKind::kRiskCeiling:
      return "risk_ceiling";
    case SloKind::kCoverageFloor:
      return "coverage_floor";
  }
  return "unknown";
}

SloEngine::SloEngine(std::vector<SloRule> rules, SloEngineOptions opts)
    : rules_(std::move(rules)),
      metrics_(opts.registry != nullptr ? *opts.registry : own_metrics_),
      run_log_(opts.run_log != nullptr ? *opts.run_log : run_log_global()),
      fires_total_(metrics_.counter("wm_slo_fires_total",
                                    "SLO burn alarms fired")),
      clears_total_(metrics_.counter("wm_slo_clears_total",
                                     "SLO burn alarms cleared")) {
  states_.resize(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    WM_CHECK(!r.name.empty(), "SLO rule needs a name");
    if (is_budget_kind(r.kind)) {
      WM_CHECK(r.objective > 0.0 && r.objective < 1.0,
               "SLO objective must leave a non-zero error budget, got ",
               r.objective);
    } else {
      WM_CHECK(r.objective > 0.0, "SLO bound must be positive, got ",
               r.objective);
      WM_CHECK(!r.gauge.empty(), "gauge-kind SLO rule '", r.name,
               "' needs a source gauge");
    }
    WM_CHECK(r.fast_window >= 1 && r.slow_window >= r.fast_window,
             "SLO windows must satisfy 1 <= fast <= slow");
    WM_CHECK(r.fire_burn > 0.0 && r.fire_count >= 1 && r.clear_count >= 1 &&
                 r.clear_fraction > 0.0 && r.clear_fraction <= 1.0,
             "bad SLO alerting thresholds for rule '", r.name, "'");
    RuleState& st = states_[i];
    const std::string base = "wm_slo_" + r.name;
    st.burn_fast_gauge = &metrics_.gauge(
        base + "_burn_fast", "fast-window burn rate (1.0 = on budget)");
    st.burn_slow_gauge =
        &metrics_.gauge(base + "_burn_slow", "slow-window burn rate");
    st.firing_gauge =
        &metrics_.gauge(base + "_firing", "1 while the burn alarm is active");
  }
}

double SloEngine::burn_over(const SloRule& rule, const RuleState& st,
                            std::size_t window) const {
  if (is_budget_kind(rule.kind)) {
    if (st.total.size() < 2) return 0.0;
    const std::size_t back =
        std::min(window, st.total.size() - 1);  // delta across `back` ticks
    const std::size_t i0 = st.total.size() - 1 - back;
    const double d_total = st.total.back() - st.total[i0];
    if (d_total <= 0.0) return 0.0;
    const double d_bad = std::max(0.0, st.bad.back() - st.bad[i0]);
    const double bad_frac = d_bad / d_total;
    return bad_frac / (1.0 - rule.objective);
  }
  // Gauge rules: mean of the valid samples in the window (NaN = the gauge
  // was absent that tick, e.g. the whole fleet was down).
  double sum = 0.0;
  std::size_t n = 0;
  const std::size_t take = std::min(window, st.value.size());
  for (std::size_t i = st.value.size() - take; i < st.value.size(); ++i) {
    if (std::isnan(st.value[i])) continue;
    sum += st.value[i];
    ++n;
  }
  if (n == 0) return 0.0;
  const double mean = sum / static_cast<double>(n);
  if (rule.kind == SloKind::kRiskCeiling) return mean / rule.objective;
  // Coverage floor: burn grows as coverage falls below the floor.
  return rule.objective / std::max(mean, 1e-9);
}

void SloEngine::evaluate(const FleetAggregate& agg) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& st = states_[i];
    ++st.ticks;

    switch (rule.kind) {
      case SloKind::kAvailability: {
        double bad = 0.0;
        for (const std::string& name : rule.bad_counters) {
          const auto it = agg.counters.find(name);
          if (it != agg.counters.end()) bad += it->second;
        }
        const auto tot = agg.counters.find(rule.total_counter);
        // No live targets: repeat the previous cumulative point so the
        // window sees zero delta instead of a fake reset.
        if (tot == agg.counters.end()) {
          st.bad.push_back(st.bad.empty() ? 0.0 : st.bad.back());
          st.total.push_back(st.total.empty() ? 0.0 : st.total.back());
        } else {
          st.bad.push_back(bad);
          st.total.push_back(tot->second);
        }
        break;
      }
      case SloKind::kLatencyP99: {
        const auto it = agg.histograms.find(rule.histogram);
        if (it == agg.histograms.end()) {
          st.bad.push_back(st.bad.empty() ? 0.0 : st.bad.back());
          st.total.push_back(st.total.empty() ? 0.0 : st.total.back());
          break;
        }
        const HistogramSnapshot& h = it->second;
        std::uint64_t within = 0;
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
          if (h.bounds[b] > rule.latency_threshold_us) break;
          within += h.buckets[b];
        }
        st.bad.push_back(static_cast<double>(h.count - within));
        st.total.push_back(static_cast<double>(h.count));
        break;
      }
      case SloKind::kRiskCeiling:
      case SloKind::kCoverageFloor: {
        const auto it = agg.gauges.find(rule.gauge);
        st.value.push_back(it == agg.gauges.end()
                               ? std::nan("")
                               : it->second.mean);
        break;
      }
    }
    cap(st.bad, rule.slow_window + 1);
    cap(st.total, rule.slow_window + 1);
    cap(st.value, rule.slow_window + 1);

    st.burn_fast = burn_over(rule, st, rule.fast_window);
    st.burn_slow = burn_over(rule, st, rule.slow_window);
    st.burn_fast_gauge->set(st.burn_fast);
    st.burn_slow_gauge->set(st.burn_slow);
    trace_counter(burn_track(rule.kind), st.burn_fast);

    const bool over =
        st.burn_fast > rule.fire_burn && st.burn_slow > rule.fire_burn;
    const double clear_at = rule.clear_fraction * rule.fire_burn;
    const bool under = st.burn_fast < clear_at && st.burn_slow < clear_at;

    if (!st.firing) {
      st.over_streak = over ? st.over_streak + 1 : 0;
      if (st.over_streak >= rule.fire_count) {
        st.firing = true;
        st.over_streak = 0;
        st.under_streak = 0;
        ++st.fires;
        fires_total_.inc();
        run_log_.write("slo_burn",
                       {{"rule", rule.name},
                        {"kind", slo_kind_name(rule.kind)},
                        {"objective", rule.objective},
                        {"burn_fast", st.burn_fast},
                        {"burn_slow", st.burn_slow},
                        {"targets_up", static_cast<std::int64_t>(
                                           agg.targets_up)}});
      }
    } else {
      st.under_streak = under ? st.under_streak + 1 : 0;
      if (st.under_streak >= rule.clear_count) {
        st.firing = false;
        st.over_streak = 0;
        st.under_streak = 0;
        ++st.clears;
        clears_total_.inc();
        run_log_.write("slo_clear",
                       {{"rule", rule.name},
                        {"kind", slo_kind_name(rule.kind)},
                        {"burn_fast", st.burn_fast},
                        {"burn_slow", st.burn_slow}});
      }
    }
    st.firing_gauge->set(st.firing ? 1.0 : 0.0);
  }
}

std::vector<SloStatus> SloEngine::status() const {
  std::vector<SloStatus> out;
  out.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const RuleState& st = states_[i];
    SloStatus s;
    s.name = rules_[i].name;
    s.kind = rules_[i].kind;
    s.objective = rules_[i].objective;
    s.burn_fast = st.burn_fast;
    s.burn_slow = st.burn_slow;
    s.firing = st.firing;
    s.fires = st.fires;
    s.clears = st.clears;
    s.ticks = st.ticks;
    out.push_back(std::move(s));
  }
  return out;
}

bool SloEngine::any_firing() const {
  for (const RuleState& st : states_) {
    if (st.firing) return true;
  }
  return false;
}

std::vector<SloRule> SloEngine::default_rules(double risk_ceiling,
                                              double coverage_floor) {
  std::vector<SloRule> rules;
  {
    SloRule r;
    r.name = "availability";
    r.kind = SloKind::kAvailability;
    r.objective = 0.999;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "latency_p99";
    r.kind = SloKind::kLatencyP99;
    r.objective = 0.99;
    r.latency_threshold_us = 50'000;
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "selective_risk";
    r.kind = SloKind::kRiskCeiling;
    r.objective = risk_ceiling;
    r.gauge = "wm_monitor_selective_risk";
    rules.push_back(std::move(r));
  }
  {
    SloRule r;
    r.name = "coverage";
    r.kind = SloKind::kCoverageFloor;
    r.objective = coverage_floor;
    r.gauge = "wm_monitor_coverage";
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace wm::obs

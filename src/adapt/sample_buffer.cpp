#include "adapt/sample_buffer.hpp"

#include <utility>

#include "common/error.hpp"

namespace wm::adapt {

SampleBuffer::SampleBuffer(std::size_t capacity) : capacity_(capacity) {
  WM_CHECK(capacity_ > 0, "sample buffer capacity must be positive");
}

void SampleBuffer::push(Entry e) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(e));
  if (entries_.back().label >= 0) ++labeled_;
  ++total_;
  if (entries_.size() > capacity_) {
    if (entries_.front().label >= 0) --labeled_;
    entries_.pop_front();
  }
}

void SampleBuffer::on_sample(const WaferMap& map,
                             const SelectivePrediction& pred) {
  push(Entry{map, pred, -1});
}

void SampleBuffer::record_outcome(const WaferMap& map,
                                  const SelectivePrediction& pred,
                                  int true_label) {
  WM_CHECK(true_label >= 0, "record_outcome: negative label");
  push(Entry{map, pred, true_label});
}

std::vector<SampleBuffer::Entry> SampleBuffer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

std::vector<float> SampleBuffer::recent_g(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t take = std::min(n, entries_.size());
  std::vector<float> gs;
  gs.reserve(take);
  for (std::size_t i = entries_.size() - take; i < entries_.size(); ++i) {
    gs.push_back(entries_[i].pred.g);
  }
  return gs;
}

std::size_t SampleBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t SampleBuffer::labeled_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return labeled_;
}

std::uint64_t SampleBuffer::total_pushed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void SampleBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  labeled_ = 0;
}

}  // namespace wm::adapt

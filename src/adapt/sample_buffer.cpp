#include "adapt/sample_buffer.hpp"

#include <utility>

#include "common/error.hpp"
#include "wafermap/defect_types.hpp"

namespace wm::adapt {

namespace {

bool same_pred(const SelectivePrediction& a, const SelectivePrediction& b) {
  return a.label == b.label && a.selected == b.selected && a.g == b.g &&
         a.confidence == b.confidence;
}

}  // namespace

SampleBuffer::SampleBuffer(std::size_t capacity) : capacity_(capacity) {
  WM_CHECK(capacity_ > 0, "sample buffer capacity must be positive");
}

void SampleBuffer::push(Entry e) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(std::move(e));
  if (entries_.back().label >= 0) ++labeled_;
  ++total_;
  if (entries_.size() > capacity_) {
    if (entries_.front().label >= 0) --labeled_;
    entries_.pop_front();
  }
}

void SampleBuffer::on_sample(const WaferMap& map,
                             const SelectivePrediction& pred) {
  push(Entry{map, pred, -1});
}

void SampleBuffer::record_outcome(const WaferMap& map,
                                  const SelectivePrediction& pred,
                                  int true_label) {
  // Validate on the caller's thread: defect_type_from_index would otherwise
  // throw much later on the controller's worker, mid-fine-tune.
  WM_CHECK(true_label >= 0 && true_label < kNumDefectTypes,
           "record_outcome: label out of range [0, ", kNumDefectTypes,
           "): ", true_label);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // The engine tap usually buffered this wafer already as an unlabeled
    // entry; upgrade that entry in place. Appending a duplicate instead
    // would train stage 2 on the same wafer twice — once with ground truth,
    // once with a possibly contradicting CAE pseudo-label — and double-count
    // labeled traffic in recent_g(). Newest-first: labels trail their
    // predictions, so the match is near the back.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->label < 0 && same_pred(it->pred, pred) && it->map == map) {
        it->label = true_label;
        ++labeled_;
        return;
      }
    }
  }
  // Already evicted (or never served through the tap): a fresh labeled entry.
  push(Entry{map, pred, true_label});
}

std::vector<SampleBuffer::Entry> SampleBuffer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

std::vector<float> SampleBuffer::recent_g(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t take = std::min(n, entries_.size());
  std::vector<float> gs;
  gs.reserve(take);
  for (std::size_t i = entries_.size() - take; i < entries_.size(); ++i) {
    gs.push_back(entries_[i].pred.g);
  }
  return gs;
}

std::size_t SampleBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t SampleBuffer::labeled_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return labeled_;
}

std::uint64_t SampleBuffer::total_pushed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void SampleBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  labeled_ = 0;
}

}  // namespace wm::adapt

#include "adapt/pseudo_label.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace wm::adapt {

namespace {

/// Eval-mode latent codes for every sample of `data`, one flattened row per
/// sample, encoded in micro-batches.
std::vector<std::vector<float>> encode_all(augment::ConvAutoencoder& cae,
                                           const Dataset& data) {
  constexpr std::size_t kBatch = 64;
  std::vector<std::vector<float>> codes;
  codes.reserve(data.size());
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < data.size(); start += kBatch) {
    const std::size_t end = std::min(data.size(), start + kBatch);
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(), start);
    const Batch batch = data.make_batch(indices);
    const Tensor z = cae.encode(batch.images);
    const std::int64_t per_sample = z.numel() / z.dim(0);
    for (std::int64_t i = 0; i < z.dim(0); ++i) {
      const float* row = z.data() + i * per_sample;
      codes.emplace_back(row, row + per_sample);
    }
  }
  return codes;
}

double squared_distance(const std::vector<float>& a,
                        const std::vector<float>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d += diff * diff;
  }
  return d;
}

}  // namespace

PseudoLabelResult pseudo_label(const Dataset& labeled,
                               const std::vector<WaferMap>& unlabeled,
                               const PseudoLabelOptions& opts, Rng& rng) {
  WM_CHECK(!labeled.empty(),
           "pseudo_label: no labeled samples to fit centroids from");
  WM_CHECK(opts.num_classes > 0, "pseudo_label: bad num_classes");
  WM_TRACE_SCOPE("adapt.pseudo_label");

  // The CAE trains on everything — reconstruction is unsupervised, and the
  // unlabeled wafers are exactly the distribution we want the latent space
  // to represent.
  Dataset combined = labeled;
  for (const WaferMap& map : unlabeled) {
    WM_CHECK(map.size() == opts.cae.map_size,
             "pseudo_label: wafer size ", map.size(), " != CAE map_size ",
             opts.cae.map_size);
    combined.add(Sample{map, DefectType::kNone, 1.0f, false});
  }
  augment::ConvAutoencoder cae(opts.cae, rng);
  const augment::CaeTrainingLog cae_log =
      augment::train_cae(cae, combined, opts.cae_training, rng);

  PseudoLabelResult result;
  result.cae_final_loss = cae_log.final_loss();

  // Per-class latent centroids from the labeled subset.
  const std::vector<std::vector<float>> labeled_codes =
      encode_all(cae, labeled);
  const std::size_t latent_dim = labeled_codes.front().size();
  std::vector<std::vector<double>> sums(
      static_cast<std::size_t>(opts.num_classes),
      std::vector<double>(latent_dim, 0.0));
  std::vector<std::size_t> counts(static_cast<std::size_t>(opts.num_classes),
                                  0);
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    const int c = static_cast<int>(labeled[i].label);
    WM_CHECK(c >= 0 && c < opts.num_classes, "pseudo_label: label ", c,
             " outside [0, ", opts.num_classes, ")");
    for (std::size_t d = 0; d < latent_dim; ++d) {
      sums[static_cast<std::size_t>(c)][d] +=
          static_cast<double>(labeled_codes[i][d]);
    }
    ++counts[static_cast<std::size_t>(c)];
  }
  std::vector<std::vector<float>> centroids(
      static_cast<std::size_t>(opts.num_classes));
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] == 0) continue;
    centroids[c].resize(latent_dim);
    for (std::size_t d = 0; d < latent_dim; ++d) {
      centroids[c][d] =
          static_cast<float>(sums[c][d] / static_cast<double>(counts[c]));
    }
    ++result.classes_with_centroids;
  }

  if (unlabeled.empty()) return result;

  Dataset unlabeled_ds;
  for (const WaferMap& map : unlabeled) {
    unlabeled_ds.add(Sample{map, DefectType::kNone, 1.0f, false});
  }
  const std::vector<std::vector<float>> codes = encode_all(cae, unlabeled_ds);
  result.labels.assign(unlabeled.size(), -1);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_class = -1;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (centroids[c].empty()) continue;
      const double d = squared_distance(codes[i], centroids[c]);
      if (d < best) {
        best = d;
        best_class = static_cast<int>(c);
      }
    }
    result.labels[i] = best_class;
    result.assigned += best_class >= 0;
  }
  return result;
}

}  // namespace wm::adapt

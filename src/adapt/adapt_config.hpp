// adapt::AdaptConfig — one aggregated configuration for the closed-loop
// drift-adaptation controller, following the serve::ServerConfig pattern:
// every knob resolves with the precedence rule
//
//   explicit field  >  environment variable  >  built-in default
//
// Fields are std::optional; unset fields fall through to their hardened env
// var (common/env.hpp — malformed values warn and fall through, never
// half-apply) and then to the default. resolve() produces the plain-value
// view the AdaptationController consumes.
//
// Environment variables (all hardened, all optional):
//   WM_ADAPT_BUFFER           sample-buffer capacity        [16, 10^6]
//   WM_ADAPT_MIN_SAMPLES      samples required to act       [8, 10^6]
//   WM_ADAPT_REFIT_WINDOW     recent g-scores for re-fit    [8, 10^6]
//   WM_ADAPT_COOLDOWN_MS      min gap between actions       [0, 10^7]
//   WM_ADAPT_EVAL_MS          post-action clear deadline    [1, 10^7]
//   WM_ADAPT_BACKOFF_MAX_MS   rollback backoff ceiling      [1, 10^8]
//   WM_ADAPT_EPOCHS           fine-tune epochs              [1, 1000]
//   WM_ADAPT_BATCH            fine-tune batch size          [1, 4096]
//   WM_ADAPT_AUGMENT_TARGET   CAE-augment per-class target  [0, 10^5] (0=off)
//   WM_ADAPT_CAE_EPOCHS       CAE training epochs           [1, 1000]
//   WM_ADAPT_PSEUDO_LABELS    pseudo-label unlabeled (0/1)
//   WM_ADAPT_MAX_RETRAINS     lifetime retrain cap          [0, 10^6]
//   WM_ADAPT_SEED             controller RNG seed           [0, 2^31)
#pragma once

#include <cstdint>
#include <optional>

namespace wm::adapt {

struct AdaptConfig {
  /// Sliding sample-buffer capacity (wafers kept for re-fit / fine-tune).
  /// Env: WM_ADAPT_BUFFER, default 1024.
  std::optional<std::size_t> buffer_capacity;
  /// Buffered samples required before the controller acts on an alarm.
  /// Env: WM_ADAPT_MIN_SAMPLES, default 64.
  std::optional<std::size_t> min_samples;
  /// Number of most-recent buffered g-scores the stage-1 threshold re-fit
  /// uses (older scores predate the drift). Env: WM_ADAPT_REFIT_WINDOW,
  /// default 256.
  std::optional<std::size_t> refit_window;
  /// Rate limit: minimum gap between consecutive adaptation actions.
  /// Env: WM_ADAPT_COOLDOWN_MS, default 5000.
  std::optional<std::int64_t> cooldown_ms;
  /// How long the controller waits for the alarm to clear after an action
  /// before escalating (stage 1 -> stage 2) or rolling back (after a
  /// stage-2 swap). Env: WM_ADAPT_EVAL_MS, default 2000.
  std::optional<std::int64_t> eval_ms;
  /// Exponential-backoff ceiling applied after a rollback.
  /// Env: WM_ADAPT_BACKOFF_MAX_MS, default 60000.
  std::optional<std::int64_t> backoff_max_ms;
  /// Stage-2 fine-tune epochs. Env: WM_ADAPT_EPOCHS, default 4.
  std::optional<int> fine_tune_epochs;
  /// Stage-2 fine-tune batch size. Env: WM_ADAPT_BATCH, default 32.
  std::optional<int> fine_tune_batch;
  /// Stage-2 fine-tune learning rate (no env knob; a fraction of the usual
  /// training rate — nudge, don't re-learn). Default 5e-4.
  std::optional<double> fine_tune_lr;
  /// Per-class target for CAE augmentation of the fine-tune set (paper
  /// Algorithm 1); 0 disables augmentation. Env: WM_ADAPT_AUGMENT_TARGET,
  /// default 0.
  std::optional<int> augment_target;
  /// Epochs for the CAEs the adaptation path trains (pseudo-labeler and
  /// augmentor). Env: WM_ADAPT_CAE_EPOCHS, default 8.
  std::optional<int> cae_epochs;
  /// Pseudo-label unlabeled buffered samples via CAE latent nearest-centroid
  /// (arXiv 2311.12840) instead of dropping them. Env: WM_ADAPT_PSEUDO_LABELS
  /// (0/1), default true.
  std::optional<bool> use_pseudo_labels;
  /// Lifetime cap on stage-2 retrains (a runaway-drift fuse; recalibrations
  /// are not capped). Env: WM_ADAPT_MAX_RETRAINS, default 8.
  std::optional<std::uint32_t> max_retrains;
  /// Seed for the controller's private RNG (CAE init, fine-tune shuffling).
  /// Env: WM_ADAPT_SEED, default 17.
  std::optional<std::uint32_t> seed;

  /// The fully resolved view: every knob a concrete value.
  struct Resolved {
    std::size_t buffer_capacity = 1024;
    std::size_t min_samples = 64;
    std::size_t refit_window = 256;
    std::int64_t cooldown_ms = 5000;
    std::int64_t eval_ms = 2000;
    std::int64_t backoff_max_ms = 60000;
    int fine_tune_epochs = 4;
    int fine_tune_batch = 32;
    double fine_tune_lr = 5e-4;
    int augment_target = 0;
    int cae_epochs = 8;
    bool use_pseudo_labels = true;
    std::uint32_t max_retrains = 8;
    std::uint32_t seed = 17;
  };

  /// Applies explicit-field > env > default to every knob.
  Resolved resolve() const;
};

}  // namespace wm::adapt

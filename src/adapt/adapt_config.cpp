#include "adapt/adapt_config.hpp"

#include "common/env.hpp"

namespace wm::adapt {

namespace {

/// explicit field > env var (hardened) > default.
template <typename T>
T pick(const std::optional<T>& field, const char* env_name, std::int64_t lo,
       std::int64_t hi, T fallback) {
  if (field) return *field;
  if (const auto v = env_int(env_name, lo, hi)) return static_cast<T>(*v);
  return fallback;
}

}  // namespace

AdaptConfig::Resolved AdaptConfig::resolve() const {
  Resolved r;
  r.buffer_capacity = pick<std::size_t>(buffer_capacity, "WM_ADAPT_BUFFER", 16,
                                        1'000'000, 1024);
  r.min_samples = pick<std::size_t>(min_samples, "WM_ADAPT_MIN_SAMPLES", 8,
                                    1'000'000, 64);
  r.refit_window = pick<std::size_t>(refit_window, "WM_ADAPT_REFIT_WINDOW", 8,
                                     1'000'000, 256);
  r.cooldown_ms = pick<std::int64_t>(cooldown_ms, "WM_ADAPT_COOLDOWN_MS", 0,
                                     10'000'000, 5000);
  r.eval_ms =
      pick<std::int64_t>(eval_ms, "WM_ADAPT_EVAL_MS", 1, 10'000'000, 2000);
  r.backoff_max_ms = pick<std::int64_t>(backoff_max_ms, "WM_ADAPT_BACKOFF_MAX_MS",
                                        1, 100'000'000, 60000);
  r.fine_tune_epochs = pick(fine_tune_epochs, "WM_ADAPT_EPOCHS", 1, 1000, 4);
  r.fine_tune_batch = pick(fine_tune_batch, "WM_ADAPT_BATCH", 1, 4096, 32);
  r.fine_tune_lr = fine_tune_lr.value_or(5e-4);
  r.augment_target =
      pick(augment_target, "WM_ADAPT_AUGMENT_TARGET", 0, 100'000, 0);
  r.cae_epochs = pick(cae_epochs, "WM_ADAPT_CAE_EPOCHS", 1, 1000, 8);
  if (use_pseudo_labels) {
    r.use_pseudo_labels = *use_pseudo_labels;
  } else if (const auto v = env_int("WM_ADAPT_PSEUDO_LABELS", 0, 1)) {
    r.use_pseudo_labels = *v != 0;
  }
  r.max_retrains = pick<std::uint32_t>(max_retrains, "WM_ADAPT_MAX_RETRAINS", 0,
                                       1'000'000, 8);
  r.seed = pick<std::uint32_t>(seed, "WM_ADAPT_SEED", 0,
                               std::int64_t{1} << 31, 17);
  return r;
}

}  // namespace wm::adapt

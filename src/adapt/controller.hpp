// adapt::AdaptationController — the closed loop from drift alarm to
// recovered operating point.
//
// The serving stack already had every actuator: SelectiveMonitor detects
// coverage/risk drift (hysteretic alarms), selective::refit_threshold moves
// the abstention cut, the trainer fine-tunes, and SwappableClassifier
// promotes candidates with canary verification and zero downtime. This
// controller is the policy that connects them — a staged, rate-limited
// escalation driven by the monitor's alarm callbacks:
//
//   OBSERVE ── alarm ──> RECALIBRATE ── still alarming ──> RETRAIN ──> SWAPPED
//      ^                     │  alarm clears                             │
//      └─────────────────────┴──────────── clear / rollback ─────────────┘
//
//   * Stage 1, RECALIBRATE: re-fit the abstention threshold on the newest
//     g-scores in the sample buffer so the live traffic mix selects the
//     target coverage again, and promote the same weights at the new cut
//     (cheap: no training). Coverage drift — the common case — ends here.
//   * Stage 2, RETRAIN: when the alarm survives the post-recalibration
//     evaluation window (thresholding cannot fix risk drift: wrong-but-
//     confident predictions stay selected at any sane cut), fine-tune a
//     CLONE of the serving net on the buffered traffic — ground-truth
//     labels where record_outcome provided them, CAE latent nearest-
//     centroid pseudo-labels (arXiv 2311.12840) for the rest, optionally
//     re-augmented with the paper's Algorithm-1 CAE pipeline — re-fit the
//     threshold under the new net, and push it through swap_to.
//   * Rollback: a candidate that fails canary verification never serves
//     (swap_to throws, incumbent stays); a candidate that serves but does
//     not clear the alarm within the evaluation window is rolled back to
//     the pre-swap model and the controller backs off exponentially.
//
// Rate limiting: actions are separated by at least cooldown_ms; every
// rollback doubles the wait (capped at backoff_max_ms) and a success resets
// it. All decisions and transitions are observable: wm_adapt_* instruments,
// adapt_* run-log events, and adapt.* Perfetto spans.
//
// Threading: monitor callbacks (engine batcher thread) only flip a flag and
// notify; every expensive step — re-fit, CAE training, fine-tuning, swap —
// runs on the controller's own worker thread while the engine keeps
// serving the incumbent.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "adapt/adapt_config.hpp"
#include "adapt/sample_buffer.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/run_log.hpp"
#include "selective/selective_net.hpp"
#include "serve/hot_swap.hpp"
#include "serve/monitor.hpp"

namespace wm::adapt {

enum class AdaptState {
  kObserve = 0,      // healthy; waiting for an alarm
  kRecalibrate = 1,  // stage-1 threshold re-fit applied, awaiting verdict
  kRetrain = 2,      // stage-2 fine-tune in progress
  kSwapped = 3,      // stage-2 candidate serving, awaiting verdict
};

const char* to_string(AdaptState state);

/// Everything the controller acts through. All pointers are borrowed and
/// must outlive the controller.
struct AdaptHooks {
  /// Alarm source; also provides the target coverage. Required.
  serve::SelectiveMonitor* monitor = nullptr;
  /// Promotion path (the engine serves through this wrapper). Required.
  serve::SwappableClassifier* swappable = nullptr;
  /// Builds a classifier over the INCUMBENT weights at a new abstention
  /// threshold — stage 1's actuator. Required. (A separate hook because the
  /// incumbent may be a file-loaded or quantized artifact the controller
  /// cannot re-wrap itself.)
  std::function<std::shared_ptr<const Classifier>(float threshold)>
      make_with_threshold;
  /// The serving fp32 net stage 2 clones and fine-tunes. nullptr = stage 2
  /// unavailable (e.g. a quantized-only deployment): the controller stays a
  /// recalibrate-only loop and logs the skipped escalation.
  const selective::SelectiveNet* net = nullptr;
  /// Canary wafers for swap_to verification (may be empty: swap unverified).
  std::vector<WaferMap> canaries;
  /// Instruments registry. nullptr = controller-private.
  obs::Registry* registry = nullptr;
  /// adapt_* event sink. nullptr = obs::run_log_global().
  obs::RunLog* run_log = nullptr;
};

/// Stats of the most recent stage-2 retrain.
struct RetrainStats {
  std::size_t samples = 0;        // fine-tune set size (after augmentation)
  std::size_t labeled = 0;        // ground-truth-labeled buffered samples
  std::size_t pseudo_labeled = 0; // labels assigned via CAE centroids
  std::size_t augmented = 0;      // synthetic samples added by Algorithm 1
  float final_loss = 0.0f;
  float threshold = 0.0f;         // re-fit cut under the fine-tuned net
};

/// Point-in-time controller status (all counters lifetime).
struct AdaptStatus {
  AdaptState state = AdaptState::kObserve;
  bool alarm_active = false;
  std::uint64_t alarms = 0;
  std::uint64_t recalibrations = 0;
  std::uint64_t retrains = 0;
  std::uint64_t swaps = 0;         // promotions the controller initiated
  std::uint64_t rollbacks = 0;
  std::uint64_t skips = 0;         // actions not taken (see adapt_skip events)
  float threshold = 0.0f;          // last threshold the controller applied
  std::int64_t backoff_ms = 0;     // current post-rollback wait
  RetrainStats last_retrain;
};

class AdaptationController {
 public:
  /// Registers the monitor hooks and starts the worker. The engine's
  /// EngineOptions::sample_tap should point at buffer() (the controller
  /// never feeds the buffer itself).
  AdaptationController(const AdaptConfig& config, AdaptHooks hooks);

  /// Unregisters the monitor callbacks and joins the worker.
  ~AdaptationController();

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  /// The sliding sample buffer — plug into EngineOptions::sample_tap.
  SampleBuffer& buffer() { return buffer_; }

  /// Ground-truth feedback fan-out: one call feeds both the monitor (risk
  /// window) and the sample buffer (fine-tune labels).
  void record_outcome(const WaferMap& map, const SelectivePrediction& pred,
                      int true_label);

  AdaptStatus status() const;

  const AdaptConfig::Resolved& config() const { return cfg_; }

 private:
  void worker_loop();
  /// Stage 1. Returns true when a new threshold was fitted and promoted.
  bool do_recalibrate();
  /// Stage 2. Returns true when a fine-tuned candidate was promoted.
  bool do_retrain();
  /// Restores the pre-swap model after a failed stage-2 evaluation.
  void do_rollback(const std::shared_ptr<const Classifier>& previous);
  void set_state(AdaptState s);
  void skip(const char* reason);

  const AdaptConfig::Resolved cfg_;
  AdaptHooks hooks_;
  SampleBuffer buffer_;
  Rng rng_;

  mutable obs::Registry own_metrics_;
  obs::Registry& metrics_;
  obs::RunLog& run_log_;
  obs::Gauge& state_gauge_;
  obs::Gauge& threshold_gauge_;
  obs::Gauge& buffer_fill_gauge_;
  obs::Gauge& backoff_gauge_;
  obs::Counter& alarms_total_;
  obs::Counter& recalibrations_total_;
  obs::Counter& retrains_total_;
  obs::Counter& swaps_total_;
  obs::Counter& rollbacks_total_;
  obs::Counter& skips_total_;

  std::uint64_t alarm_cb_id_ = 0;
  std::uint64_t clear_cb_id_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool alarm_active_ = false;
  AdaptState state_ = AdaptState::kObserve;
  int episode_stage_ = 0;  // 0 = next action recalibrates, 1 = retrains
  std::chrono::steady_clock::time_point next_action_{};
  std::int64_t backoff_ms_;
  float last_threshold_ = 0.0f;
  RetrainStats last_retrain_;
  /// The pre-swap incumbent, held while a stage-2 candidate is on trial.
  std::shared_ptr<const Classifier> pending_rollback_;

  std::thread worker_;  // started last
};

}  // namespace wm::adapt

// CAE latent-space nearest-centroid pseudo-labeling (arXiv 2311.12840).
//
// Stage-2 fine-tuning wants labels for the buffered traffic, but ground
// truth only exists for the fraction an operator fed back through
// record_outcome(). Following the semi-supervised latent-vector approach,
// the remainder is labeled geometrically: train one convolutional
// auto-encoder on ALL buffered wafers (reconstruction needs no labels),
// compute one latent centroid per class from the labeled subset, and assign
// each unlabeled wafer the class of its nearest centroid (squared L2 over
// the flattened latent code). Classes with no labeled representative get no
// centroid; wafers nearest to nothing stay unlabeled (label -1) rather than
// receiving a guess from an unrepresented class.
#pragma once

#include <cstdint>
#include <vector>

#include "augment/cae.hpp"
#include "augment/cae_trainer.hpp"
#include "wafermap/dataset.hpp"

namespace wm::adapt {

struct PseudoLabelOptions {
  /// CAE architecture; map_size must match the wafers.
  augment::CaeOptions cae;
  /// CAE training schedule (unsupervised, over labeled + unlabeled).
  augment::CaeTrainerOptions cae_training;
  int num_classes = 9;
};

struct PseudoLabelResult {
  /// Per unlabeled input: assigned class, or -1 when no centroid existed.
  std::vector<int> labels;
  std::size_t assigned = 0;
  /// Classes that had at least one labeled sample (centroid count).
  std::size_t classes_with_centroids = 0;
  float cae_final_loss = 0.0f;
};

/// Trains a CAE on labeled+unlabeled, fits per-class centroids from
/// `labeled`, and nearest-centroid-assigns every wafer in `unlabeled`.
/// Throws wm::Error when `labeled` is empty (no centroid can exist) or the
/// map sizes disagree. `unlabeled` may be empty (result has no labels).
PseudoLabelResult pseudo_label(const Dataset& labeled,
                               const std::vector<WaferMap>& unlabeled,
                               const PseudoLabelOptions& opts, Rng& rng);

}  // namespace wm::adapt

#include "adapt/controller.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "adapt/pseudo_label.hpp"
#include "augment/augmentor.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "selective/calibrate.hpp"
#include "selective/load_classifier.hpp"
#include "selective/trainer.hpp"

namespace wm::adapt {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds ms(std::int64_t v) {
  return std::chrono::milliseconds(v);
}

obs::Registry& resolve_registry(const AdaptHooks& hooks, obs::Registry& own) {
  return hooks.registry != nullptr ? *hooks.registry : own;
}

obs::RunLog& resolve_run_log(const AdaptHooks& hooks) {
  return hooks.run_log != nullptr ? *hooks.run_log : obs::run_log_global();
}

}  // namespace

const char* to_string(AdaptState state) {
  switch (state) {
    case AdaptState::kObserve:
      return "OBSERVE";
    case AdaptState::kRecalibrate:
      return "RECALIBRATE";
    case AdaptState::kRetrain:
      return "RETRAIN";
    case AdaptState::kSwapped:
      return "SWAPPED";
  }
  return "?";
}

AdaptationController::AdaptationController(const AdaptConfig& config,
                                           AdaptHooks hooks)
    : cfg_(config.resolve()),
      hooks_(std::move(hooks)),
      buffer_(cfg_.buffer_capacity),
      rng_(cfg_.seed),
      metrics_(resolve_registry(hooks_, own_metrics_)),
      run_log_(resolve_run_log(hooks_)),
      state_gauge_(metrics_.gauge(
          "wm_adapt_state",
          "controller state (0 observe, 1 recalibrate, 2 retrain, 3 swapped)")),
      threshold_gauge_(metrics_.gauge(
          "wm_adapt_threshold", "last abstention threshold the loop applied")),
      buffer_fill_gauge_(metrics_.gauge("wm_adapt_buffer_fill",
                                        "entries in the sample buffer")),
      backoff_gauge_(metrics_.gauge("wm_adapt_backoff_ms",
                                    "current post-rollback backoff")),
      alarms_total_(metrics_.counter("wm_adapt_alarms_total",
                                     "drift alarms delivered to the loop")),
      recalibrations_total_(metrics_.counter(
          "wm_adapt_recalibrations_total", "stage-1 threshold re-fits applied")),
      retrains_total_(metrics_.counter("wm_adapt_retrains_total",
                                       "stage-2 fine-tune candidates built")),
      swaps_total_(metrics_.counter("wm_adapt_swaps_total",
                                    "promotions initiated by the loop")),
      rollbacks_total_(metrics_.counter(
          "wm_adapt_rollbacks_total",
          "candidates rejected (canary failure or post-swap regression)")),
      skips_total_(metrics_.counter("wm_adapt_skips_total",
                                    "actions not taken (see adapt_skip)")),
      backoff_ms_(0) {
  WM_CHECK(hooks_.monitor != nullptr, "AdaptationController needs a monitor");
  WM_CHECK(hooks_.swappable != nullptr,
           "AdaptationController needs a SwappableClassifier");
  WM_CHECK(hooks_.make_with_threshold != nullptr,
           "AdaptationController needs a make_with_threshold hook");

  state_gauge_.set(0.0);

  alarm_cb_id_ = hooks_.monitor->on_alarm([this](
                                              const serve::MonitorSnapshot& s) {
    // Engine batcher thread: stay cheap — log, flag, hand off to the worker.
    alarms_total_.inc();
    run_log_.write("adapt_alarm", {{"coverage", s.coverage},
                                   {"target_coverage", s.target_coverage},
                                   {"selective_risk", s.selective_risk},
                                   {"window_fill", static_cast<std::uint64_t>(
                                                       s.window_fill)}});
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      alarm_active_ = true;
    }
    cv_.notify_all();
  });
  clear_cb_id_ =
      hooks_.monitor->on_clear([this](const serve::MonitorSnapshot&) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          alarm_active_ = false;
        }
        cv_.notify_all();
      });

  // An alarm may predate the controller; start the episode immediately.
  // Callbacks are registered FIRST, then the snapshot is read under the
  // controller mutex: a transition in between lands through the callback
  // (delivery is serialized behind the monitor's dispatch lock and a
  // snapshot is always at least as fresh as any dispatched transition), so
  // no fire or clear can be lost in the gap.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (hooks_.monitor->snapshot().alarm) alarm_active_ = true;
  }

  worker_ = std::thread([this] { worker_loop(); });
}

AdaptationController::~AdaptationController() {
  // Unhook first so no alarm callback races member destruction, then stop.
  hooks_.monitor->remove_callback(alarm_cb_id_);
  hooks_.monitor->remove_callback(clear_cb_id_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void AdaptationController::record_outcome(const WaferMap& map,
                                          const SelectivePrediction& pred,
                                          int true_label) {
  buffer_.record_outcome(map, pred, true_label);
  hooks_.monitor->record_outcome(pred, true_label);
}

void AdaptationController::set_state(AdaptState s) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_ = s;
  state_gauge_.set(static_cast<double>(static_cast<int>(s)));
}

void AdaptationController::skip(const char* reason) {
  skips_total_.inc();
  run_log_.write("adapt_skip", {{"reason", reason}});
}

void AdaptationController::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait(lock, [&] { return stop_ || alarm_active_; });
    if (stop_) break;

    // Rate limit: a previous action (or rollback backoff) gates the next.
    if (Clock::now() < next_action_) {
      skip("cooldown");
      cv_.wait_until(lock, next_action_, [&] { return stop_; });
      continue;  // re-check the alarm after the wait
    }
    if (!alarm_active_) continue;  // cleared on its own

    const int stage = episode_stage_;
    lock.unlock();
    bool acted = false;
    try {
      acted = stage == 0 ? do_recalibrate() : do_retrain();
    } catch (const std::exception& e) {
      // The loop must never take the process down. Anything in a stage can
      // throw on the worker thread — make_with_threshold re-reading a torn
      // model file, a size-mismatched wafer fed through record_outcome
      // tripping a shape check in the CAE/fine-tune path — and an escaping
      // exception here would std::terminate the whole serving process.
      // Treat it like any other non-action: log, count, retry after the
      // cooldown on fresher buffer contents.
      skips_total_.inc();
      run_log_.write("adapt_error",
                     {{"stage", stage == 0 ? "recalibrate" : "retrain"},
                      {"error", e.what()}});
      log_error("adapt: ", stage == 0 ? "recalibrate" : "retrain",
                " failed: ", e.what());
    } catch (...) {
      skips_total_.inc();
      run_log_.write("adapt_error",
                     {{"stage", stage == 0 ? "recalibrate" : "retrain"},
                      {"error", "unknown exception"}});
      log_error("adapt: ", stage == 0 ? "recalibrate" : "retrain",
                " failed: unknown exception");
    }
    lock.lock();
    if (stop_) break;

    if (!acted) {
      // Preconditions unmet (not enough samples, no net / no labels, canary
      // rejection). Never escalate on a non-action; when stage 2 itself is
      // impossible, fall BACK to stage 1 — by the next pass the buffer holds
      // fresher post-drift traffic, so another re-fit can still converge
      // (the recalibrate-only loop for label-free or quantized deployments).
      if (stage == 1) episode_stage_ = 0;
      next_action_ =
          Clock::now() + ms(std::max<std::int64_t>(cfg_.cooldown_ms, 50));
      cv_.wait_until(lock, next_action_,
                     [&] { return stop_ || !alarm_active_; });
      continue;
    }

    next_action_ =
        Clock::now() + ms(std::max<std::int64_t>(cfg_.cooldown_ms, backoff_ms_));

    // Post-action evaluation: give fresh traffic eval_ms to clear the alarm.
    const auto eval_deadline = Clock::now() + ms(cfg_.eval_ms);
    cv_.wait_until(lock, eval_deadline, [&] { return stop_ || !alarm_active_; });
    if (stop_) break;

    if (!alarm_active_) {
      run_log_.write("adapt_resolved",
                     {{"stage", stage == 0 ? "recalibrate" : "retrain"},
                      {"threshold", last_threshold_}});
      log_info("adapt: drift resolved by ",
               stage == 0 ? "recalibration" : "retrain");
      episode_stage_ = 0;
      backoff_ms_ = 0;
      backoff_gauge_.set(0.0);
      pending_rollback_.reset();
      state_ = AdaptState::kObserve;
      state_gauge_.set(0.0);
      continue;
    }

    if (stage == 0) {
      // The re-fit did not recover the operating point (risk drift:
      // thresholding cannot unselect wrong-but-confident traffic) —
      // escalate to fine-tuning on the next pass.
      episode_stage_ = 1;
      continue;
    }

    // A promoted stage-2 candidate failed to clear the alarm: regression.
    std::shared_ptr<const Classifier> prev = std::move(pending_rollback_);
    pending_rollback_.reset();
    lock.unlock();
    if (prev != nullptr) do_rollback(prev);
    lock.lock();
    backoff_ms_ = backoff_ms_ == 0
                      ? std::max<std::int64_t>(2 * cfg_.cooldown_ms, 100)
                      : std::min(2 * backoff_ms_, cfg_.backoff_max_ms);
    backoff_gauge_.set(static_cast<double>(backoff_ms_));
    next_action_ = Clock::now() + ms(backoff_ms_);
    episode_stage_ = 0;  // start over (recalibrate first) after the backoff
    state_ = AdaptState::kObserve;
    state_gauge_.set(0.0);
  }
}

bool AdaptationController::do_recalibrate() {
  buffer_fill_gauge_.set(static_cast<double>(buffer_.size()));
  if (buffer_.size() < cfg_.min_samples) {
    skip("insufficient_samples");
    return false;
  }
  set_state(AdaptState::kRecalibrate);
  WM_TRACE_SCOPE("adapt.recalibrate");

  const double target = hooks_.monitor->options().target_coverage;
  const std::vector<float> gs = buffer_.recent_g(cfg_.refit_window);
  const float tau = selective::refit_threshold(gs, target);
  const double achieved = selective::coverage_at(gs, tau);

  std::shared_ptr<const Classifier> candidate = hooks_.make_with_threshold(tau);
  try {
    WM_TRACE_SCOPE("adapt.swap");
    hooks_.swappable->swap_to(candidate, hooks_.canaries, "adapt:recalibrate");
  } catch (const std::exception& e) {
    rollbacks_total_.inc();
    run_log_.write("adapt_rollback",
                   {{"reason", "canary"}, {"stage", "recalibrate"},
                    {"error", e.what()}});
    log_warn("adapt: recalibrated candidate rejected: ", e.what());
    return false;
  }

  recalibrations_total_.inc();
  swaps_total_.inc();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    last_threshold_ = tau;
  }
  threshold_gauge_.set(static_cast<double>(tau));
  run_log_.write("adapt_recalibrate",
                 {{"new_threshold", tau},
                  {"target_coverage", target},
                  {"achieved_coverage", achieved},
                  {"g_window", static_cast<std::uint64_t>(gs.size())},
                  {"model_version", hooks_.swappable->version()}});
  log_info("adapt: recalibrated threshold to ", tau, " (coverage ", achieved,
           " vs target ", target, ") on ", gs.size(), " recent g-scores");
  return true;
}

bool AdaptationController::do_retrain() {
  if (hooks_.net == nullptr) {
    skip("no_net");
    return false;
  }
  if (retrains_total_.value() >= cfg_.max_retrains) {
    skip("retrain_cap");
    return false;
  }
  const std::vector<SampleBuffer::Entry> entries = buffer_.snapshot();
  buffer_fill_gauge_.set(static_cast<double>(entries.size()));
  if (entries.size() < cfg_.min_samples) {
    skip("insufficient_samples");
    return false;
  }

  // Ground-truth core + pseudo-label pool. Correctly-classified labeled
  // samples stay in: they anchor the fine-tune against forgetting what
  // still works.
  Dataset labeled;
  std::vector<WaferMap> unlabeled;
  for (const SampleBuffer::Entry& e : entries) {
    if (e.label >= 0) {
      labeled.add(Sample{e.map, defect_type_from_index(e.label), 1.0f, false});
    } else {
      unlabeled.push_back(e.map);
    }
  }
  if (labeled.empty()) {
    // No ground truth at all: centroids (and any sane fine-tune) need at
    // least some labels.
    skip("no_labels");
    return false;
  }

  set_state(AdaptState::kRetrain);
  WM_TRACE_SCOPE("adapt.retrain");
  const int map_size = labeled[0].map.size();
  const double target = hooks_.monitor->options().target_coverage;

  RetrainStats stats;
  stats.labeled = labeled.size();

  Dataset fine_set = labeled;
  if (cfg_.use_pseudo_labels && !unlabeled.empty()) {
    PseudoLabelOptions plo;
    plo.cae.map_size = map_size;
    plo.cae_training.epochs = cfg_.cae_epochs;
    plo.cae_training.run_log = &run_log_;
    plo.num_classes = hooks_.net->options().num_classes;
    const PseudoLabelResult pl =
        pseudo_label(labeled, unlabeled, plo, rng_);
    for (std::size_t i = 0; i < unlabeled.size(); ++i) {
      if (pl.labels[i] < 0) continue;
      // Down-weighted like synthetics: a centroid guess is not ground truth.
      fine_set.add(Sample{unlabeled[i], defect_type_from_index(pl.labels[i]),
                          0.5f, false});
    }
    stats.pseudo_labeled = pl.assigned;
    run_log_.write("adapt_pseudo_label",
                   {{"unlabeled", unlabeled.size()},
                    {"assigned", pl.assigned},
                    {"centroids", pl.classes_with_centroids},
                    {"cae_loss", pl.cae_final_loss}});
  }

  if (cfg_.augment_target > 0) {
    augment::AugmentOptions ao;
    ao.target_per_class = cfg_.augment_target;
    ao.cae.map_size = map_size;
    ao.cae_training.epochs = cfg_.cae_epochs;
    ao.cae_training.run_log = &run_log_;
    const std::size_t before = fine_set.size();
    fine_set = augment::Augmentor(ao).augment_dataset(fine_set, rng_);
    stats.augmented = fine_set.size() - before;
  }
  stats.samples = fine_set.size();

  // Fine-tune a clone; the incumbent serves untouched until the swap.
  std::unique_ptr<selective::SelectiveNet> candidate_net = hooks_.net->clone();
  selective::TrainerOptions to;
  to.epochs = cfg_.fine_tune_epochs;
  to.batch_size = cfg_.fine_tune_batch;
  to.learning_rate = cfg_.fine_tune_lr;
  to.target_coverage = target;
  to.run_log = &run_log_;
  const selective::TrainingLog log =
      selective::SelectiveTrainer(to).fine_tune(*candidate_net, fine_set, rng_);
  stats.final_loss = log.final_epoch().loss;

  // The fine-tune moved the g distribution; re-fit the cut under the NEW
  // net so the candidate comes up at target coverage on the LIVE mix — the
  // buffered wafers, not fine_set, whose synthetics would skew the cut.
  Dataset live;
  for (const SampleBuffer::Entry& e : entries) {
    live.add(Sample{e.map, DefectType::kNone, 1.0f, false});
  }
  const float tau = selective::calibrate_threshold(*candidate_net, live, target);
  stats.threshold = tau;

  std::shared_ptr<const Classifier> previous = hooks_.swappable->current();
  std::shared_ptr<const Classifier> candidate =
      wm::load_classifier(std::move(candidate_net),
                          {.threshold = tau});
  try {
    WM_TRACE_SCOPE("adapt.swap");
    hooks_.swappable->swap_to(candidate, hooks_.canaries, "adapt:retrain");
  } catch (const std::exception& e) {
    rollbacks_total_.inc();
    run_log_.write("adapt_rollback", {{"reason", "canary"},
                                      {"stage", "retrain"},
                                      {"error", e.what()}});
    log_warn("adapt: fine-tuned candidate rejected by canaries: ", e.what());
    return false;
  }

  retrains_total_.inc();
  swaps_total_.inc();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    last_threshold_ = tau;
    last_retrain_ = stats;
    pending_rollback_ = std::move(previous);
    state_ = AdaptState::kSwapped;
  }
  state_gauge_.set(static_cast<double>(static_cast<int>(AdaptState::kSwapped)));
  threshold_gauge_.set(static_cast<double>(tau));
  // Buffered predictions came from the retired model; their g-scores would
  // poison the next re-fit.
  buffer_.clear();
  buffer_fill_gauge_.set(0.0);
  run_log_.write(
      "adapt_retrain",
      {{"samples", static_cast<std::uint64_t>(stats.samples)},
       {"labeled", static_cast<std::uint64_t>(stats.labeled)},
       {"pseudo_labeled", static_cast<std::uint64_t>(stats.pseudo_labeled)},
       {"augmented", static_cast<std::uint64_t>(stats.augmented)},
       {"final_loss", stats.final_loss},
       {"new_threshold", tau},
       {"model_version", hooks_.swappable->version()}});
  log_info("adapt: fine-tuned candidate promoted (", stats.samples,
           " samples, ", stats.pseudo_labeled, " pseudo-labeled, ",
           stats.augmented, " augmented), threshold ", tau);
  return true;
}

void AdaptationController::do_rollback(
    const std::shared_ptr<const Classifier>& previous) {
  try {
    hooks_.swappable->swap_to(previous, hooks_.canaries, "adapt:rollback");
    rollbacks_total_.inc();
    run_log_.write("adapt_rollback",
                   {{"reason", "regression"},
                    {"model_version", hooks_.swappable->version()}});
    log_warn("adapt: candidate failed to clear the alarm; rolled back");
  } catch (const std::exception& e) {
    // The previous model passed canaries once; this is effectively
    // unreachable, but the loop must never take the process down.
    rollbacks_total_.inc();
    run_log_.write("adapt_rollback",
                   {{"reason", "rollback_failed"}, {"error", e.what()}});
    log_error("adapt: rollback itself failed: ", e.what());
  }
}

AdaptStatus AdaptationController::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  AdaptStatus s;
  s.state = state_;
  s.alarm_active = alarm_active_;
  s.alarms = alarms_total_.value();
  s.recalibrations = recalibrations_total_.value();
  s.retrains = retrains_total_.value();
  s.swaps = swaps_total_.value();
  s.rollbacks = rollbacks_total_.value();
  s.skips = skips_total_.value();
  s.threshold = last_threshold_;
  s.backoff_ms = backoff_ms_;
  s.last_retrain = last_retrain_;
  return s;
}

}  // namespace wm::adapt

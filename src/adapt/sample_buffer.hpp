// adapt::SampleBuffer — the sliding window of served traffic the adaptation
// loop acts on.
//
// Plugs into the engine as its serve::SampleTap: every fulfilled (wafer,
// prediction) pair lands here as an unlabeled entry. Ground-truth feedback
// (the same labels an operator feeds SelectiveMonitor::record_outcome)
// additionally lands as a labeled entry via record_outcome(). A bounded
// deque keeps the newest `capacity` entries — old traffic predates the
// drift the controller is reacting to, so it ages out.
//
// The two consumers:
//   * stage 1 (threshold re-fit) reads recent_g() — the newest g-scores —
//     and hands them to selective::refit_threshold;
//   * stage 2 (fine-tune) reads snapshot() — labeled entries become the
//     ground-truth core of the fine-tune set, unlabeled ones are
//     pseudo-labeled via the CAE latent space (see pseudo_label.hpp).
//
// Thread-safe: on_sample runs on the engine batcher thread while the
// controller worker reads snapshots.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/sample_tap.hpp"

namespace wm::adapt {

class SampleBuffer final : public serve::SampleTap {
 public:
  struct Entry {
    WaferMap map;
    SelectivePrediction pred;
    int label = -1;  // ground-truth class; -1 = unlabeled
  };

  explicit SampleBuffer(std::size_t capacity);

  /// serve::SampleTap: one served request, no ground truth (yet). Copies the
  /// wafer (the engine's reference dies with the call).
  void on_sample(const WaferMap& map, const SelectivePrediction& pred) override;

  /// Ground-truth feedback: the prediction as served plus the true label.
  /// Upgrades the (newest) matching unlabeled tap entry in place, so the
  /// same wafer never sits in the window twice — once labeled, once awaiting
  /// a pseudo-label that could contradict the truth. Falls back to appending
  /// a fresh labeled entry when the tap entry has already been evicted (or
  /// the wafer never passed through the tap). Throws on a label outside
  /// [0, kNumDefectTypes).
  void record_outcome(const WaferMap& map, const SelectivePrediction& pred,
                      int true_label);

  /// Copy of the current window, oldest first.
  std::vector<Entry> snapshot() const;

  /// g-scores of the newest min(n, size()) entries, oldest first.
  std::vector<float> recent_g(std::size_t n) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::size_t labeled_count() const;
  /// Lifetime entries pushed (never decreases; drives "enough new traffic
  /// since the alarm" decisions). In-place label upgrades do not count —
  /// the tap already counted that wafer.
  std::uint64_t total_pushed() const;

  /// Drops every entry. The controller clears after a stage-2 swap: buffered
  /// g-scores came from the retired model and would poison the next re-fit.
  void clear();

 private:
  void push(Entry e);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  std::size_t labeled_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace wm::adapt

// Discrete Radon transform of the binary fail map and the Wu et al. feature
// reduction: per-position mean/std across angles, cubic-interpolated to a
// fixed length.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm::baseline {

/// Sinogram of the failing-die indicator: rows are projection angles
/// (uniform in [0, pi)), columns are `bins` offsets across the wafer
/// diameter. Each entry counts failing dies whose signed distance to the
/// line direction falls into the bin.
Tensor radon_transform(const WaferMap& map, int angles = 36, int bins = 32);

/// Catmull-Rom cubic interpolation of `values` resampled at `samples`
/// uniformly spaced positions over the full input range.
std::vector<double> cubic_resample(const std::vector<double>& values,
                                   int samples);

/// The 2 * `samples` Radon features of Wu et al.: the per-bin mean across
/// angles and the per-bin standard deviation across angles, each cubic-
/// resampled to `samples` points.
std::vector<double> radon_features(const WaferMap& map, int samples = 20,
                                   int angles = 36, int bins = 32);

}  // namespace wm::baseline

#include "baseline/wu_classifier.hpp"

#include "baseline/features.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/threadpool.hpp"

namespace wm::baseline {

WuClassifier::WuClassifier(const WuClassifierOptions& opts)
    : opts_(opts), svm_(opts.svm) {}

void WuClassifier::fit(const Dataset& training, Rng& rng) {
  WM_CHECK(!training.empty(), "cannot fit on empty dataset");
  log_info("Wu baseline: extracting features for ", training.size(), " wafers");
  const FeatureMatrix features = extract_features(training);
  scaler_.fit(features.rows);
  const auto scaled = scaler_.transform(features.rows);
  log_info("Wu baseline: training one-vs-one SVM");
  svm_.fit(scaled, features.labels, rng);
}

int WuClassifier::predict(const WaferMap& map) const {
  WM_CHECK(trained(), "classifier not trained");
  return svm_.predict(scaler_.transform(extract_features(map)));
}

std::vector<int> WuClassifier::predict(const Dataset& data) const {
  WM_CHECK(trained(), "classifier not trained");
  // Per-wafer prediction only reads the trained SVM/scaler, so wafers fan
  // out across the pool writing disjoint slots.
  std::vector<int> out(data.size());
  ThreadPool::global().parallel_for(0, data.size(), [&](std::size_t i) {
    out[i] = predict(data[i].map);
  });
  return out;
}

std::vector<SelectivePrediction> WuClassifier::predict_batch(
    std::span<const WaferMap> maps) const {
  WM_CHECK(trained(), "classifier not trained");
  std::vector<SelectivePrediction> out(maps.size());
  ThreadPool::global().parallel_for(0, maps.size(), [&](std::size_t i) {
    out[i].label = predict(maps[i]);
    out[i].selected = true;
    out[i].g = 1.0f;
  });
  return out;
}

}  // namespace wm::baseline

#include "baseline/svm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wm::baseline {

BinarySvm::BinarySvm(const SvmOptions& opts) : opts_(opts) {
  WM_CHECK(opts.c > 0.0, "C must be positive");
  WM_CHECK(opts.gamma > 0.0, "gamma must be positive");
  WM_CHECK(opts.tolerance > 0.0, "tolerance must be positive");
  WM_CHECK(opts.max_passes > 0 && opts.max_iterations > 0, "bad SMO limits");
}

double BinarySvm::kernel(const std::vector<double>& a,
                         const std::vector<double>& b) const {
  WM_ASSERT(a.size() == b.size(), "kernel dimension mismatch");
  if (opts_.kernel == KernelType::kLinear) {
    double dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    return dot;
  }
  double dist2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    dist2 += d * d;
  }
  return std::exp(-opts_.gamma * dist2);
}

void BinarySvm::fit(const std::vector<std::vector<double>>& x,
                    const std::vector<int>& y, Rng& rng) {
  const int n = static_cast<int>(x.size());
  WM_CHECK(n >= 2, "need at least two samples");
  WM_CHECK(y.size() == x.size(), "label count mismatch");
  bool has_pos = false;
  bool has_neg = false;
  for (int label : y) {
    WM_CHECK(label == 1 || label == -1, "labels must be +1/-1, got ", label);
    has_pos |= (label == 1);
    has_neg |= (label == -1);
  }
  WM_CHECK(has_pos && has_neg, "need both classes to train an SVM");

  // Precompute the Gram matrix (float to halve memory; pairs in the wafer
  // problem stay small enough after per-class caps).
  std::vector<float> gram(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const float k = static_cast<float>(kernel(x[static_cast<std::size_t>(i)],
                                                x[static_cast<std::size_t>(j)]));
      gram[static_cast<std::size_t>(i) * n + j] = k;
      gram[static_cast<std::size_t>(j) * n + i] = k;
    }
  }
  auto k_at = [&](int i, int j) {
    return static_cast<double>(gram[static_cast<std::size_t>(i) * n + j]);
  };

  std::vector<double> alpha(static_cast<std::size_t>(n), 0.0);
  double b = 0.0;

  auto f_of = [&](int i) {
    double acc = b;
    for (int j = 0; j < n; ++j) {
      if (alpha[static_cast<std::size_t>(j)] != 0.0) {
        acc += alpha[static_cast<std::size_t>(j)] * y[static_cast<std::size_t>(j)] *
               k_at(j, i);
      }
    }
    return acc;
  };

  // Simplified SMO (Platt; CS229 variant): sweep i, pick random j, optimise
  // the (alpha_i, alpha_j) pair analytically.
  const double c = opts_.c;
  const double tol = opts_.tolerance;
  int passes = 0;
  int iterations = 0;
  while (passes < opts_.max_passes && iterations < opts_.max_iterations) {
    ++iterations;
    int changed = 0;
    for (int i = 0; i < n; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      const double ei = f_of(i) - y[si];
      if (!((y[si] * ei < -tol && alpha[si] < c) ||
            (y[si] * ei > tol && alpha[si] > 0))) {
        continue;
      }
      int j = rng.uniform_int(0, n - 2);
      if (j >= i) ++j;
      const std::size_t sj = static_cast<std::size_t>(j);
      const double ej = f_of(j) - y[sj];
      const double ai_old = alpha[si];
      const double aj_old = alpha[sj];
      double lo;
      double hi;
      if (y[si] != y[sj]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k_at(i, j) - k_at(i, i) - k_at(j, j);
      if (eta >= 0.0) continue;
      double aj = aj_old - y[sj] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::fabs(aj - aj_old) < 1e-5) continue;
      const double ai = ai_old + y[si] * y[sj] * (aj_old - aj);
      alpha[si] = ai;
      alpha[sj] = aj;
      const double b1 = b - ei - y[si] * (ai - ai_old) * k_at(i, i) -
                        y[sj] * (aj - aj_old) * k_at(i, j);
      const double b2 = b - ej - y[si] * (ai - ai_old) * k_at(i, j) -
                        y[sj] * (aj - aj_old) * k_at(j, j);
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }

  // Keep support vectors only.
  support_vectors_.clear();
  coefficients_.clear();
  for (int i = 0; i < n; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    if (alpha[si] > 1e-8) {
      support_vectors_.push_back(x[si]);
      coefficients_.push_back(alpha[si] * y[si]);
    }
  }
  bias_ = b;
}

double BinarySvm::decision(const std::vector<double>& x) const {
  WM_CHECK(trained(), "SVM not trained");
  double acc = bias_;
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    acc += coefficients_[i] * kernel(support_vectors_[i], x);
  }
  return acc;
}

int BinarySvm::predict(const std::vector<double>& x) const {
  return decision(x) >= 0.0 ? 1 : -1;
}

}  // namespace wm::baseline

#include "baseline/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace wm::baseline {

GeometryFeatures geometry_of_component(const Component& comp,
                                       const WaferMap& map) {
  GeometryFeatures f;
  const int n = comp.size();
  if (n == 0) return f;

  const double total = std::max(1, map.total_dies());
  f.area = static_cast<double>(n) / total;

  // Perimeter: dies with at least one non-member 4-neighbour.
  // Use a membership grid for O(1) lookups.
  const int size = map.size();
  std::vector<bool> member(static_cast<std::size_t>(size) * size, false);
  for (const auto& [r, c] : comp.dies) {
    member[static_cast<std::size_t>(r) * size + c] = true;
  }
  auto is_member = [&](int r, int c) {
    return r >= 0 && r < size && c >= 0 && c < size &&
           member[static_cast<std::size_t>(r) * size + c];
  };
  int boundary = 0;
  int min_r = size;
  int max_r = -1;
  int min_c = size;
  int max_c = -1;
  double mr = 0.0;
  double mc = 0.0;
  for (const auto& [r, c] : comp.dies) {
    if (!is_member(r - 1, c) || !is_member(r + 1, c) || !is_member(r, c - 1) ||
        !is_member(r, c + 1)) {
      ++boundary;
    }
    min_r = std::min(min_r, r);
    max_r = std::max(max_r, r);
    min_c = std::min(min_c, c);
    max_c = std::max(max_c, c);
    mr += r;
    mc += c;
  }
  const double circumference = std::numbers::pi * map.size();
  f.perimeter = boundary / circumference;

  // Second moments -> equivalent-ellipse axes.
  mr /= n;
  mc /= n;
  double srr = 0.0;
  double scc = 0.0;
  double src = 0.0;
  for (const auto& [r, c] : comp.dies) {
    srr += (r - mr) * (r - mr);
    scc += (c - mc) * (c - mc);
    src += (r - mr) * (c - mc);
  }
  // 1/12 term: each die is a unit square, not a point.
  srr = srr / n + 1.0 / 12.0;
  scc = scc / n + 1.0 / 12.0;
  src = src / n;
  const double tr = srr + scc;
  const double det = std::sqrt(std::max(0.0, (srr - scc) * (srr - scc) / 4.0 +
                                                 src * src));
  const double l1 = tr / 2.0 + det;  // larger eigenvalue
  const double l2 = std::max(1e-12, tr / 2.0 - det);
  // Ellipse with matching moments has semi-axes 2*sqrt(lambda).
  const double diameter = map.size();
  f.major_axis = 4.0 * std::sqrt(l1) / diameter;
  f.minor_axis = 4.0 * std::sqrt(l2) / diameter;
  f.eccentricity = std::sqrt(std::max(0.0, 1.0 - l2 / l1));

  const double bbox_area =
      static_cast<double>(max_r - min_r + 1) * (max_c - min_c + 1);
  f.solidity = static_cast<double>(n) / bbox_area;
  return f;
}

GeometryFeatures geometry_features(const WaferMap& map) {
  return geometry_of_component(largest_component(map), map);
}

}  // namespace wm::baseline

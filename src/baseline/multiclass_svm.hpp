// One-vs-one multiclass SVM with majority voting (ties broken by summed
// decision values), as used by the Wu et al. wafer classifier.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "baseline/svm.hpp"

namespace wm::baseline {

struct MulticlassSvmOptions {
  SvmOptions binary;
  /// Caps the training samples per class per binary machine (keeps the
  /// majority-class Gram matrices tractable); 0 disables the cap.
  int max_samples_per_class = 2000;
};

class MulticlassSvm {
 public:
  explicit MulticlassSvm(const MulticlassSvmOptions& opts);

  /// Labels are arbitrary non-negative class ids; one binary machine is
  /// trained per unordered label pair that has samples on both sides.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<int>& y, Rng& rng);

  bool trained() const { return !machines_.empty(); }

  int predict(const std::vector<double>& x) const;
  std::vector<int> predict(const std::vector<std::vector<double>>& x) const;

  int machine_count() const { return static_cast<int>(machines_.size()); }
  const std::vector<int>& classes() const { return classes_; }

 private:
  MulticlassSvmOptions opts_;
  std::vector<int> classes_;
  /// (class_a, class_b) -> machine trained with a => +1, b => -1.
  std::vector<std::pair<std::pair<int, int>, BinarySvm>> machines_;
};

}  // namespace wm::baseline

// Geometry features of the most salient (largest) failure region, after
// Wu et al.: area, perimeter, axis lengths and eccentricity from second
// moments, and a solidity proxy.
#pragma once

#include <array>

#include "baseline/connected_components.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm::baseline {

inline constexpr int kNumGeometryFeatures = 6;

struct GeometryFeatures {
  double area = 0.0;         // |region| / |wafer dies|
  double perimeter = 0.0;    // boundary die count / wafer circumference
  double major_axis = 0.0;   // normalised by wafer diameter
  double minor_axis = 0.0;   // normalised by wafer diameter
  double eccentricity = 0.0; // in [0, 1); 0 for a disc, -> 1 for a line
  double solidity = 0.0;     // area / bounding-box area

  std::array<double, kNumGeometryFeatures> to_array() const {
    return {area, perimeter, major_axis, minor_axis, eccentricity, solidity};
  }
};

/// Features of the largest failing component (all zeros when none fails).
GeometryFeatures geometry_features(const WaferMap& map);

/// Same from a precomputed component.
GeometryFeatures geometry_of_component(const Component& comp, const WaferMap& map);

}  // namespace wm::baseline

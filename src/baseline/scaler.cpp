#include "baseline/scaler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wm::baseline {

void StandardScaler::fit(const std::vector<std::vector<double>>& rows) {
  WM_CHECK(!rows.empty(), "cannot fit scaler on empty data");
  const std::size_t dim = rows.front().size();
  WM_CHECK(dim > 0, "zero-dimensional features");
  for (const auto& row : rows) {
    WM_CHECK(row.size() == dim, "ragged feature rows");
  }
  mean_.assign(dim, 0.0);
  std_.assign(dim, 0.0);
  for (const auto& row : rows) {
    for (std::size_t d = 0; d < dim; ++d) mean_[d] += row[d];
  }
  for (auto& m : mean_) m /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = row[d] - mean_[d];
      std_[d] += diff * diff;
    }
  }
  for (auto& s : std_) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 1.0;  // constant feature
  }
}

std::vector<double> StandardScaler::transform(const std::vector<double>& row) const {
  WM_CHECK(fitted(), "scaler not fitted");
  WM_CHECK(row.size() == mean_.size(), "feature dimension mismatch");
  std::vector<double> out(row.size());
  for (std::size_t d = 0; d < row.size(); ++d) {
    out[d] = (row[d] - mean_[d]) / std_[d];
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(transform(row));
  return out;
}

}  // namespace wm::baseline

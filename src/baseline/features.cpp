#include "baseline/features.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "baseline/denoise.hpp"
#include "baseline/geometry.hpp"
#include "baseline/radon.hpp"
#include "common/error.hpp"
#include "common/threadpool.hpp"

namespace wm::baseline {

std::vector<double> zone_density_features(const WaferMap& map) {
  // Zone 0: r < 0.25 R. Zones 1..12: rings [0.25,0.55), [0.55,0.85),
  // [0.85, 1.0] R x four quadrants.
  std::vector<double> fails(kNumZones, 0.0);
  std::vector<double> totals(kNumZones, 0.0);
  const double c = map.center();
  const double radius = map.radius();
  for (int row = 0; row < map.size(); ++row) {
    for (int col = 0; col < map.size(); ++col) {
      if (!map.on_wafer(row, col)) continue;
      const double dr = row - c;
      const double dc = col - c;
      const double rel = std::sqrt(dr * dr + dc * dc) / radius;
      int zone;
      if (rel < 0.25) {
        zone = 0;
      } else {
        int ring;
        if (rel < 0.55) ring = 0;
        else if (rel < 0.85) ring = 1;
        else ring = 2;
        const double angle = std::atan2(dr, dc);  // [-pi, pi]
        const int quadrant = std::clamp(
            static_cast<int>((angle + std::numbers::pi) /
                             (std::numbers::pi / 2.0)),
            0, 3);
        zone = 1 + ring * 4 + quadrant;
      }
      totals[static_cast<std::size_t>(zone)] += 1.0;
      fails[static_cast<std::size_t>(zone)] +=
          (map.at(row, col) == Die::kFail) ? 1.0 : 0.0;
    }
  }
  std::vector<double> density(kNumZones, 0.0);
  for (int z = 0; z < kNumZones; ++z) {
    const std::size_t sz = static_cast<std::size_t>(z);
    density[sz] = totals[sz] > 0.0 ? fails[sz] / totals[sz] : 0.0;
  }
  return density;
}

std::vector<double> extract_features(const WaferMap& map) {
  const WaferMap denoised = median_denoise(map);
  std::vector<double> features = zone_density_features(denoised);
  const std::vector<double> radon = radon_features(denoised, kRadonSamples);
  features.insert(features.end(), radon.begin(), radon.end());
  const auto geom = geometry_features(denoised).to_array();
  features.insert(features.end(), geom.begin(), geom.end());
  WM_ASSERT(static_cast<int>(features.size()) == kFeatureDim,
            "feature dimension drifted");
  return features;
}

FeatureMatrix extract_features(const Dataset& data) {
  // Radon/geometry extraction is per-wafer independent; fan out across the
  // pool with each wafer writing its own row.
  FeatureMatrix out;
  out.rows.resize(data.size());
  out.labels.resize(data.size());
  ThreadPool::global().parallel_for(0, data.size(), [&](std::size_t i) {
    out.rows[i] = extract_features(data[i].map);
    out.labels[i] = static_cast<int>(data[i].label);
  });
  return out;
}

}  // namespace wm::baseline

#include "baseline/knn.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace wm::baseline {

KnnClassifier::KnnClassifier(const KnnOptions& opts) : opts_(opts) {
  WM_CHECK(opts.k > 0, "k must be positive");
}

void KnnClassifier::fit(const std::vector<std::vector<double>>& x,
                        const std::vector<int>& y) {
  WM_CHECK(!x.empty() && x.size() == y.size(), "bad training data");
  const std::size_t dim = x.front().size();
  for (const auto& row : x) WM_CHECK(row.size() == dim, "ragged feature rows");
  for (int label : y) WM_CHECK(label >= 0, "negative class label");
  x_ = x;
  y_ = y;
}

int KnnClassifier::predict(const std::vector<double>& x) const {
  WM_CHECK(trained(), "kNN not trained");
  WM_CHECK(x.size() == x_.front().size(), "feature dimension mismatch");
  // Partial sort of squared distances to the k nearest neighbours.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    double d2 = 0.0;
    const auto& row = x_[i];
    for (std::size_t d = 0; d < x.size(); ++d) {
      const double diff = row[d] - x[d];
      d2 += diff * diff;
    }
    dist.emplace_back(d2, y_[i]);
  }
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(opts_.k), dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::map<int, double> votes;
  for (std::size_t i = 0; i < k; ++i) {
    const double w =
        opts_.distance_weighted ? 1.0 / (std::sqrt(dist[i].first) + 1e-9) : 1.0;
    votes[dist[i].second] += w;
  }
  int best = dist.front().second;
  double best_votes = -1.0;
  for (const auto& [label, v] : votes) {
    if (v > best_votes) {
      best = label;
      best_votes = v;
    }
  }
  return best;
}

std::vector<int> KnnClassifier::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace wm::baseline

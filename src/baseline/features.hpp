// Full Wu et al. feature vector: 13 zone-density features + 2*20 Radon
// features + 6 geometry features = 59 dimensions.
#pragma once

#include <vector>

#include "wafermap/dataset.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm::baseline {

inline constexpr int kNumZones = 13;
inline constexpr int kRadonSamples = 20;
inline constexpr int kFeatureDim = kNumZones + 2 * kRadonSamples + 6;  // 59

/// Failure density in 13 radial/angular zones: one central disc plus three
/// rings split into four quadrants each.
std::vector<double> zone_density_features(const WaferMap& map);

/// The assembled 59-d feature vector. The map is median-denoised first
/// (speckle removal), as in the original pipeline.
std::vector<double> extract_features(const WaferMap& map);

/// Feature matrix (N x 59) for a whole dataset, plus aligned labels.
struct FeatureMatrix {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
};
FeatureMatrix extract_features(const Dataset& data);

}  // namespace wm::baseline

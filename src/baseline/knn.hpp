// k-nearest-neighbour classifier over the Wu feature space — the earlier
// spatial-signature-analysis baseline of Tobin/Karnowski et al. that the
// paper's related-work section cites ([6, 7]).
#pragma once

#include <vector>

namespace wm::baseline {

struct KnnOptions {
  int k = 5;
  /// Weight votes by inverse distance instead of uniformly.
  bool distance_weighted = true;
};

class KnnClassifier {
 public:
  explicit KnnClassifier(const KnnOptions& opts);

  /// Stores the training set (lazy learner). Labels are non-negative ids.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y);

  bool trained() const { return !x_.empty(); }

  int predict(const std::vector<double>& x) const;
  std::vector<int> predict(const std::vector<std::vector<double>>& x) const;

  const KnnOptions& options() const { return opts_; }

 private:
  KnnOptions opts_;
  std::vector<std::vector<double>> x_;
  std::vector<int> y_;
};

}  // namespace wm::baseline

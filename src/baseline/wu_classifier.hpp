// The assembled Wu et al. (TSM'14) wafer classifier: median denoise ->
// 59-d features (zones + Radon + geometry) -> z-score -> one-vs-one RBF SVM.
// This is the paper's comparison baseline ("SVM [2]"), reimplemented without
// the human-in-the-loop relabelling step, exactly as the paper compares.
#pragma once

#include <span>

#include "baseline/multiclass_svm.hpp"
#include "baseline/scaler.hpp"
#include "serve/classifier.hpp"
#include "wafermap/dataset.hpp"

namespace wm::baseline {

struct WuClassifierOptions {
  MulticlassSvmOptions svm;
};

class WuClassifier final : public Classifier {
 public:
  explicit WuClassifier(const WuClassifierOptions& opts = {});

  void fit(const Dataset& training, Rng& rng);

  bool trained() const { return svm_.trained(); }

  /// Predicted class index for one wafer.
  int predict(const WaferMap& map) const;

  /// Predicted class indices for a dataset (order preserved).
  std::vector<int> predict(const Dataset& data) const;

  /// Classifier interface: the SVM has no reject option, so every wafer is
  /// selected with g = 1 (confidence stays 0 — a hard one-vs-one vote
  /// carries no probability calibration). This makes the baseline
  /// interchangeable with the selective CNN behind the serving layer.
  std::vector<SelectivePrediction> predict_batch(
      std::span<const WaferMap> maps) const override;

  /// Distinct labels seen at fit(); 0 before training.
  int num_classes() const override {
    return static_cast<int>(svm_.classes().size());
  }

 private:
  WuClassifierOptions opts_;
  StandardScaler scaler_;
  MulticlassSvm svm_;
};

}  // namespace wm::baseline

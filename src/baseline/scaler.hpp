// Z-score feature standardisation fit on training data.
#pragma once

#include <vector>

namespace wm::baseline {

class StandardScaler {
 public:
  /// Learns per-dimension mean and std. Dimensions with zero variance get
  /// std 1 (they become constant zeros after transform).
  void fit(const std::vector<std::vector<double>>& rows);

  bool fitted() const { return !mean_.empty(); }
  std::size_t dim() const { return mean_.size(); }

  std::vector<double> transform(const std::vector<double>& row) const;
  std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& rows) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace wm::baseline

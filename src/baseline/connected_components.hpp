// Connected-component labelling of failing dies (8-connectivity).
#pragma once

#include <vector>

#include "wafermap/wafer_map.hpp"

namespace wm::baseline {

struct Component {
  std::vector<std::pair<int, int>> dies;  // (row, col) members

  int size() const { return static_cast<int>(dies.size()); }
};

/// All 8-connected components of failing dies, largest first.
std::vector<Component> connected_components(const WaferMap& map);

/// The largest failing component, or an empty one when no die fails.
Component largest_component(const WaferMap& map);

}  // namespace wm::baseline

#include "baseline/radon.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace wm::baseline {

Tensor radon_transform(const WaferMap& map, int angles, int bins) {
  WM_CHECK(angles > 0 && bins > 1, "bad radon geometry: angles=", angles,
           " bins=", bins);
  Tensor sinogram(Shape{angles, bins});
  const double c = map.center();
  const double half_diag = map.size() / std::numbers::sqrt2;
  for (int a = 0; a < angles; ++a) {
    const double theta = std::numbers::pi * a / angles;
    const double nx = std::cos(theta);
    const double ny = std::sin(theta);
    float* row = sinogram.data() + static_cast<std::int64_t>(a) * bins;
    for (int r = 0; r < map.size(); ++r) {
      for (int col = 0; col < map.size(); ++col) {
        if (!map.on_wafer(r, col) || map.at(r, col) != Die::kFail) continue;
        // Signed distance of the die centre to the line through the wafer
        // centre with normal (nx, ny), mapped into [0, bins).
        const double dist = (col - c) * nx + (r - c) * ny;
        int bin = static_cast<int>(
            std::floor((dist + half_diag) / (2 * half_diag) * bins));
        bin = std::clamp(bin, 0, bins - 1);
        row[bin] += 1.0f;
      }
    }
  }
  return sinogram;
}

std::vector<double> cubic_resample(const std::vector<double>& values,
                                   int samples) {
  WM_CHECK(samples > 0, "samples must be positive");
  WM_CHECK(values.size() >= 2, "need at least two points to resample");
  const int n = static_cast<int>(values.size());
  // Ghost points extend linearly so straight data stays straight at the ends.
  auto clamped = [&](int i) {
    if (i < 0) return 2.0 * values[0] - values[1];
    if (i >= n) {
      return 2.0 * values[static_cast<std::size_t>(n - 1)] -
             values[static_cast<std::size_t>(n - 2)];
    }
    return values[static_cast<std::size_t>(i)];
  };
  std::vector<double> out(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    const double x = samples == 1
                         ? 0.0
                         : static_cast<double>(s) * (n - 1) / (samples - 1);
    const int i = std::min(static_cast<int>(std::floor(x)), n - 2);
    const double t = x - i;
    // Catmull-Rom spline through p1=values[i], p2=values[i+1].
    const double p0 = clamped(i - 1);
    const double p1 = clamped(i);
    const double p2 = clamped(i + 1);
    const double p3 = clamped(i + 2);
    out[static_cast<std::size_t>(s)] =
        0.5 * ((2.0 * p1) + (-p0 + p2) * t +
               (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t * t +
               (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t * t * t);
  }
  return out;
}

std::vector<double> radon_features(const WaferMap& map, int samples, int angles,
                                   int bins) {
  const Tensor sino = radon_transform(map, angles, bins);
  std::vector<double> means(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> stds(static_cast<std::size_t>(bins), 0.0);
  for (int b = 0; b < bins; ++b) {
    double mean = 0.0;
    for (int a = 0; a < angles; ++a) mean += sino.at(a, b);
    mean /= angles;
    double var = 0.0;
    for (int a = 0; a < angles; ++a) {
      const double d = sino.at(a, b) - mean;
      var += d * d;
    }
    means[static_cast<std::size_t>(b)] = mean;
    stds[static_cast<std::size_t>(b)] = std::sqrt(var / angles);
  }
  std::vector<double> features = cubic_resample(means, samples);
  const std::vector<double> std_part = cubic_resample(stds, samples);
  features.insert(features.end(), std_part.begin(), std_part.end());
  return features;
}

}  // namespace wm::baseline

// Spatial filtering used by the Wu et al. (TSM'14) pipeline before feature
// extraction: a 3x3 median (majority) filter over the binary fail map.
#pragma once

#include "wafermap/wafer_map.hpp"

namespace wm::baseline {

/// Replaces each on-wafer die by the majority pass/fail vote of its 3x3
/// on-wafer neighbourhood (ties keep the original value). Removes isolated
/// speckle failures while preserving coherent patterns.
WaferMap median_denoise(const WaferMap& map);

}  // namespace wm::baseline

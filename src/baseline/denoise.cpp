#include "baseline/denoise.hpp"

namespace wm::baseline {

WaferMap median_denoise(const WaferMap& map) {
  WaferMap out = map;
  for (int row = 0; row < map.size(); ++row) {
    for (int col = 0; col < map.size(); ++col) {
      if (!map.on_wafer(row, col)) continue;
      int fails = 0;
      int total = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          const int r = row + dr;
          const int c = col + dc;
          if (!map.on_wafer(r, c)) continue;
          ++total;
          fails += (map.at(r, c) == Die::kFail);
        }
      }
      if (2 * fails > total) {
        out.set(row, col, Die::kFail);
      } else if (2 * fails < total) {
        out.set(row, col, Die::kPass);
      }  // exact tie keeps the original value
    }
  }
  return out;
}

}  // namespace wm::baseline

// Binary soft-margin SVM trained with (simplified) SMO.
//
// Supports linear and RBF kernels. Training data is held by value; the
// trained model keeps only support vectors.
#pragma once

#include <vector>

namespace wm {
class Rng;
}

namespace wm::baseline {

enum class KernelType { kLinear, kRbf };

struct SvmOptions {
  KernelType kernel = KernelType::kRbf;
  double c = 1.0;        // soft-margin penalty
  double gamma = 0.05;   // RBF width
  double tolerance = 1e-3;
  int max_passes = 5;     // SMO convergence: passes without alpha changes
  int max_iterations = 200;  // hard cap on full SMO sweeps
};

class BinarySvm {
 public:
  explicit BinarySvm(const SvmOptions& opts);

  /// Labels must be +1 / -1. Requires at least one sample of each label.
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<int>& y, Rng& rng);

  bool trained() const { return !support_vectors_.empty(); }

  /// Signed decision value f(x) = sum alpha_i y_i K(x_i, x) + b.
  double decision(const std::vector<double>& x) const;

  /// +1 or -1.
  int predict(const std::vector<double>& x) const;

  int support_vector_count() const {
    return static_cast<int>(support_vectors_.size());
  }

  const SvmOptions& options() const { return opts_; }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  SvmOptions opts_;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> coefficients_;  // alpha_i * y_i
  double bias_ = 0.0;
};

}  // namespace wm::baseline

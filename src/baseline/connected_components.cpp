#include "baseline/connected_components.hpp"

#include <algorithm>

namespace wm::baseline {

std::vector<Component> connected_components(const WaferMap& map) {
  const int size = map.size();
  std::vector<bool> visited(static_cast<std::size_t>(size) * size, false);
  std::vector<Component> components;
  std::vector<std::pair<int, int>> stack;

  auto is_fail = [&](int r, int c) {
    return map.on_wafer(r, c) && map.at(r, c) == Die::kFail;
  };

  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      const std::size_t idx = static_cast<std::size_t>(row) * size + col;
      if (visited[idx] || !is_fail(row, col)) continue;
      Component comp;
      stack.clear();
      stack.emplace_back(row, col);
      visited[idx] = true;
      while (!stack.empty()) {
        const auto [r, c] = stack.back();
        stack.pop_back();
        comp.dies.emplace_back(r, c);
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            if (dr == 0 && dc == 0) continue;
            const int nr = r + dr;
            const int nc = c + dc;
            if (nr < 0 || nr >= size || nc < 0 || nc >= size) continue;
            const std::size_t nidx = static_cast<std::size_t>(nr) * size + nc;
            if (!visited[nidx] && is_fail(nr, nc)) {
              visited[nidx] = true;
              stack.emplace_back(nr, nc);
            }
          }
        }
      }
      components.push_back(std::move(comp));
    }
  }
  std::sort(components.begin(), components.end(),
            [](const Component& a, const Component& b) {
              return a.size() > b.size();
            });
  return components;
}

Component largest_component(const WaferMap& map) {
  auto comps = connected_components(map);
  return comps.empty() ? Component{} : std::move(comps.front());
}

}  // namespace wm::baseline

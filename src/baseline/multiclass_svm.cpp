#include "baseline/multiclass_svm.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wm::baseline {

MulticlassSvm::MulticlassSvm(const MulticlassSvmOptions& opts) : opts_(opts) {
  WM_CHECK(opts.max_samples_per_class >= 0, "bad per-class cap");
}

void MulticlassSvm::fit(const std::vector<std::vector<double>>& x,
                        const std::vector<int>& y, Rng& rng) {
  WM_CHECK(!x.empty() && x.size() == y.size(), "bad training data");
  std::set<int> class_set;
  for (int label : y) {
    WM_CHECK(label >= 0, "negative class label");
    class_set.insert(label);
  }
  WM_CHECK(class_set.size() >= 2, "need at least two classes");
  classes_.assign(class_set.begin(), class_set.end());

  // Index samples per class, optionally capped (shuffled first so the cap
  // takes a random subset).
  std::map<int, std::vector<std::size_t>> per_class;
  for (std::size_t i = 0; i < y.size(); ++i) {
    per_class[y[i]].push_back(i);
  }
  for (auto& [label, indices] : per_class) {
    rng.shuffle(indices);
    if (opts_.max_samples_per_class > 0 &&
        static_cast<int>(indices.size()) > opts_.max_samples_per_class) {
      indices.resize(static_cast<std::size_t>(opts_.max_samples_per_class));
    }
  }

  machines_.clear();
  for (std::size_t a = 0; a < classes_.size(); ++a) {
    for (std::size_t b = a + 1; b < classes_.size(); ++b) {
      const int ca = classes_[a];
      const int cb = classes_[b];
      std::vector<std::vector<double>> pair_x;
      std::vector<int> pair_y;
      for (std::size_t i : per_class[ca]) {
        pair_x.push_back(x[i]);
        pair_y.push_back(+1);
      }
      for (std::size_t i : per_class[cb]) {
        pair_x.push_back(x[i]);
        pair_y.push_back(-1);
      }
      BinarySvm machine(opts_.binary);
      machine.fit(pair_x, pair_y, rng);
      machines_.emplace_back(std::make_pair(ca, cb), std::move(machine));
    }
  }
}

int MulticlassSvm::predict(const std::vector<double>& x) const {
  WM_CHECK(trained(), "multiclass SVM not trained");
  std::map<int, int> votes;
  std::map<int, double> margin;
  for (const auto& [pair, machine] : machines_) {
    const double d = machine.decision(x);
    const int winner = d >= 0.0 ? pair.first : pair.second;
    votes[winner] += 1;
    margin[winner] += std::fabs(d);
  }
  int best = classes_.front();
  for (int cls : classes_) {
    const int v = votes.count(cls) ? votes.at(cls) : 0;
    const int bv = votes.count(best) ? votes.at(best) : 0;
    const double m = margin.count(cls) ? margin.at(cls) : 0.0;
    const double bm = margin.count(best) ? margin.at(best) : 0.0;
    if (v > bv || (v == bv && m > bm)) best = cls;
  }
  return best;
}

std::vector<int> MulticlassSvm::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace wm::baseline

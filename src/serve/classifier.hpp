// The unified inference vocabulary: every wafer classifier in the repo —
// the selective CNN (Eq. 2) and the Wu et al. SVM baseline alike — is a
// wm::Classifier that turns a span of wafer maps into SelectivePredictions.
// Batch-first by design: predict_batch is the one virtual, predict_one is a
// thin convenience on top, and the serving layer (serve/inference_engine)
// micro-batches online traffic into predict_batch calls.
#pragma once

#include <span>
#include <vector>

#include "wafermap/dataset.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm {

/// One classifier verdict on one wafer, in the paper's selective vocabulary
/// (Eq. 2): the label prediction f(x), the selection score g(x), and whether
/// g cleared the abstention threshold. Classifiers without a reject option
/// (the SVM baseline) always select with g = 1.
struct SelectivePrediction {
  int label = -1;          // argmax of f (always filled, even when rejected)
  bool selected = false;   // g >= threshold
  float g = 0.0f;          // selection score
  float confidence = 0.0f; // probability of the predicted class (0 when the
                           // model has no probability calibration)
};

/// Abstract batch classifier over wafer maps.
///
/// Contract: predict_batch returns exactly maps.size() predictions, in input
/// order, and is const + thread-safe (callable concurrently from multiple
/// threads on one instance). Per-sample results must not depend on how the
/// caller groups maps into batches — this is what lets the inference engine
/// micro-batch requests from independent clients and still return the same
/// bits a direct call would have produced.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual std::vector<SelectivePrediction> predict_batch(
      std::span<const WaferMap> maps) const = 0;

  /// Number of classes the label index ranges over.
  virtual int num_classes() const = 0;

  /// Single-wafer convenience: predict_batch on a span of one.
  SelectivePrediction predict_one(const WaferMap& map) const;
};

/// Runs a classifier over every sample of a dataset (order preserved).
std::vector<SelectivePrediction> predict_dataset(const Classifier& classifier,
                                                 const Dataset& data);

/// Achieved coverage of a prediction set.
double coverage_of(const std::vector<SelectivePrediction>& preds);

/// Accuracy over the *selected* samples only (the paper's selective
/// accuracy). Returns 1.0 when nothing is selected (zero risk by Eq. 7's
/// convention of an empty selection).
double selective_accuracy(const std::vector<SelectivePrediction>& preds,
                          const std::vector<int>& labels);

/// Accuracy over all samples, ignoring the reject option.
double full_accuracy(const std::vector<SelectivePrediction>& preds,
                     const std::vector<int>& labels);

}  // namespace wm

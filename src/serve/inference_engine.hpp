// Online inference: a dynamic micro-batching engine in front of a
// wm::Classifier.
//
// Many client threads submit() single wafer maps; requests land in a bounded
// FIFO queue (submit blocks when the queue is full — backpressure instead of
// unbounded memory growth) and a dedicated batcher thread flushes a
// micro-batch to Classifier::predict_batch when either
//
//   * max_batch requests are waiting (throughput path), or
//   * max_delay_us has elapsed since the *oldest* queued request arrived
//     (latency bound for trickle traffic).
//
// Results come back through std::future<SelectivePrediction>. Because the
// Classifier contract guarantees per-sample results independent of batch
// composition, engine results are bit-identical to calling predict_batch
// directly on the same wafers.
//
// Observability: the engine publishes its counters through wm::obs
// instruments (wm_serve_requests_total, wm_serve_queue_depth,
// wm_serve_batch_size, wm_serve_request_latency_us, ...) — by default into
// an engine-private registry, or into one you pass via
// EngineOptions::registry (e.g. &obs::Registry::global() to merge with
// trainer metrics in a single dump). stats() returns a consistent
// EngineStats snapshot as before; stats_text() renders the registry in
// Prometheus exposition format. Each flush is traced as a "serve.flush"
// span (see obs/trace.hpp).
//
// Shutdown is drain-then-stop: shutdown() (and the destructor) rejects new
// submissions, flushes everything already queued, then joins the batcher.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_context.hpp"
#include "serve/classifier.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm::serve {

class SelectiveMonitor;
class SampleTap;

struct EngineOptions {
  /// Flush as soon as this many requests are waiting.
  int max_batch = 32;
  /// Flush a partial batch once its oldest request has waited this long.
  /// 0 flushes immediately (every batch is whatever had accumulated while
  /// the previous forward ran).
  std::int64_t max_delay_us = 2000;
  /// submit() blocks while this many requests are already queued.
  std::size_t queue_capacity = 256;
  /// Where the wm_serve_* instruments live. nullptr = an engine-private
  /// registry (each engine gets its own counters). Point several engines at
  /// one registry and they share (aggregate) the same instruments.
  obs::Registry* registry = nullptr;
  /// Drift monitor fed every prediction the engine fulfils (after each
  /// successful flush, in request order). Must outlive the engine; errored
  /// batches are not observed. nullptr = no monitoring.
  SelectiveMonitor* monitor = nullptr;
  /// Sample tap fed every (wafer, prediction) pair the engine fulfils —
  /// same cadence and ordering as the monitor feed, right after it. Must
  /// outlive the engine; errored batches are not tapped. The adaptation
  /// layer's sliding sample buffer plugs in here (see serve/sample_tap.hpp).
  /// nullptr = no tap.
  SampleTap* sample_tap = nullptr;
};

/// Per-request engine timestamps (obs::trace_clock_ns() values), written by
/// the batcher thread and published to the submitter through the future's
/// happens-before — read them only once the request's future is ready.
/// Held by shared_ptr because net::Server abandons timed-out futures while
/// the engine still completes them later.
struct RequestTiming {
  std::int64_t enqueue_ns = 0;  // set at submit
  std::int64_t wake_ns = 0;     // batcher cycle that took the request began
  std::int64_t formed_ns = 0;   // batch closed; compute started
  std::int64_t done_ns = 0;     // predict_batch returned
};

/// Compatibility view of the request-latency distribution: an
/// obs::HistogramSnapshot (the one shared histogram implementation) with
/// the microsecond-suffixed accessors this header always had.
struct LatencyHistogram : obs::HistogramSnapshot {
  std::uint64_t count() const { return HistogramSnapshot::count; }
  double mean_us() const { return mean(); }
  /// Upper bucket bound containing the q-quantile, q in [0, 1]; the exact
  /// observed maximum for the tail bucket. 0 when empty.
  std::int64_t quantile_us(double q) const { return quantile(q); }
};

/// Counters since engine construction. A consistent snapshot is returned by
/// InferenceEngine::stats().
struct EngineStats {
  std::uint64_t requests = 0;          // completed (futures fulfilled)
  std::uint64_t batches = 0;           // predict_batch calls issued
  std::uint64_t abstained = 0;         // results with selected == false
  std::uint64_t full_flushes = 0;      // batches flushed at max_batch
  std::uint64_t timer_flushes = 0;     // flushed by the delay timer / drain
  std::uint64_t shed = 0;              // try_submit() rejections (queue full)
  LatencyHistogram latency;            // per-request enqueue -> result

  double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }

  /// Multi-line human-readable dump of every counter above.
  std::string to_string() const;
};

class InferenceEngine {
 public:
  /// The classifier must outlive the engine and satisfy the Classifier
  /// thread-safety contract. Starts the batcher thread immediately.
  explicit InferenceEngine(const Classifier& classifier,
                           const EngineOptions& opts = {});

  /// Drains and stops (see shutdown()).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one wafer; blocks while the queue is at capacity. The future
  /// resolves with the prediction, or with the classifier's exception if the
  /// batch containing this wafer failed. Throws wm::Error after shutdown().
  ///
  /// The traced overload attaches a distributed-trace context (spans are
  /// emitted per stage when trace.active()) and optionally a RequestTiming
  /// the batcher fills with per-stage timestamps for every request,
  /// sampled or not.
  std::future<SelectivePrediction> submit(WaferMap map);
  std::future<SelectivePrediction> submit(
      WaferMap map, obs::TraceContext trace,
      std::shared_ptr<RequestTiming> timing = nullptr);

  /// Non-blocking submit for load-shedding front-ends (net::Server): when
  /// the queue is at capacity this returns std::nullopt immediately —
  /// bumping wm_serve_shed_total — instead of blocking the producer.
  /// Otherwise identical to submit(), including the throw after shutdown().
  std::optional<std::future<SelectivePrediction>> try_submit(WaferMap map);
  std::optional<std::future<SelectivePrediction>> try_submit(
      WaferMap map, obs::TraceContext trace,
      std::shared_ptr<RequestTiming> timing = nullptr);

  /// Blocking convenience: submit + wait.
  SelectivePrediction predict(const WaferMap& map);

  /// Stops accepting new requests, flushes everything already queued, then
  /// joins the batcher thread. Idempotent.
  void shutdown();

  /// False once shutdown() has begun.
  bool accepting() const;

  /// Requests currently queued (excluding the batch in flight).
  std::size_t queue_depth() const;

  const EngineOptions& options() const { return opts_; }

  /// Consistent snapshot of the counters.
  EngineStats stats() const;

  /// Prometheus exposition dump of the engine's registry (every wm_serve_*
  /// instrument; plus whatever else lives there when a shared registry was
  /// passed in EngineOptions).
  std::string stats_text() const;

  /// The registry holding this engine's instruments.
  obs::Registry& metrics_registry() const { return metrics_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    WaferMap map;
    std::promise<SelectivePrediction> promise;
    Clock::time_point enqueued;
    obs::TraceContext trace{};
    std::shared_ptr<RequestTiming> timing;  // usually null (in-process path)
  };

  void batcher_loop();

  const Classifier& classifier_;
  const EngineOptions opts_;

  mutable obs::Registry own_metrics_;  // used when opts_.registry == nullptr
  obs::Registry& metrics_;
  obs::Counter& requests_total_;
  obs::Counter& batches_total_;
  obs::Counter& abstained_total_;
  obs::Counter& full_flushes_total_;
  obs::Counter& timer_flushes_total_;
  obs::Counter& shed_total_;
  obs::Gauge& queue_depth_gauge_;
  obs::Histogram& batch_size_hist_;
  obs::Histogram& latency_hist_;
  obs::Histogram& stage_queue_hist_;
  obs::Histogram& stage_batch_hist_;
  obs::Histogram& stage_compute_hist_;

  mutable std::mutex mutex_;
  std::mutex join_mutex_;             // serialises shutdown()'s join
  std::condition_variable queue_cv_;  // batcher waits: work available / stop
  std::condition_variable space_cv_;  // producers wait: queue below capacity
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::thread batcher_;  // started last: everything above is initialised
};

}  // namespace wm::serve

#include "serve/monitor.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace wm::serve {

namespace {

obs::Registry& resolve_registry(const MonitorOptions& opts,
                                obs::Registry& own) {
  return opts.registry != nullptr ? *opts.registry : own;
}

obs::RunLog& resolve_run_log(const MonitorOptions& opts) {
  return opts.run_log != nullptr ? *opts.run_log : obs::run_log_global();
}

}  // namespace

std::string MonitorSnapshot::to_string() const {
  std::ostringstream os;
  os << "monitor: observations=" << observations << " (window " << window_fill
     << "), outcomes=" << outcomes << " (window " << outcome_fill << ")\n";
  os << "  coverage " << coverage << " (target " << target_coverage
     << "), abstention " << abstention_rate << " (ewma " << abstention_ewma
     << ")\n";
  os << "  mean g " << mean_g << " (ewma " << g_ewma << "), selective risk "
     << selective_risk << "\n";
  os << "  alarm " << (alarm ? "ACTIVE" : "clear") << " (total fired "
     << alarms_total << ")\n";
  os << "  class mix:";
  for (std::size_t c = 0; c < class_mix.size(); ++c) {
    os << " " << c << ":" << class_mix[c];
  }
  os << "\n";
  return os.str();
}

SelectiveMonitor::SelectiveMonitor(const MonitorOptions& opts)
    : opts_(opts),
      metrics_(resolve_registry(opts_, own_metrics_)),
      run_log_(resolve_run_log(opts_)),
      observations_total_(metrics_.counter(
          "wm_monitor_observations_total",
          "predictions observed by the selective monitor")),
      outcomes_total_(metrics_.counter(
          "wm_monitor_outcomes_total",
          "ground-truth outcomes fed back to the selective monitor")),
      alarms_total_(metrics_.counter("wm_monitor_alarms_total",
                                     "drift alarms raised")),
      coverage_gauge_(metrics_.gauge("wm_monitor_coverage",
                                     "windowed selected fraction")),
      abstention_gauge_(metrics_.gauge("wm_monitor_abstention_rate",
                                       "windowed abstention (1 - coverage)")),
      abstention_ewma_gauge_(metrics_.gauge(
          "wm_monitor_abstention_ewma", "EWMA-smoothed abstention rate")),
      mean_g_gauge_(metrics_.gauge("wm_monitor_mean_g",
                                   "windowed mean selection score g(x)")),
      risk_gauge_(metrics_.gauge(
          "wm_monitor_selective_risk",
          "windowed empirical error rate among selected predictions")),
      alarm_gauge_(metrics_.gauge("wm_monitor_alarm",
                                  "1 while a drift alarm is active")),
      window_fill_gauge_(metrics_.gauge("wm_monitor_window_fill",
                                        "observations in the sliding window")) {
  WM_CHECK(opts_.window > 0, "monitor window must be positive");
  WM_CHECK(opts_.ewma_alpha > 0.0 && opts_.ewma_alpha <= 1.0,
           "ewma_alpha must be in (0, 1], got ", opts_.ewma_alpha);
  WM_CHECK(opts_.target_coverage > 0.0 && opts_.target_coverage <= 1.0,
           "target_coverage must be in (0, 1], got ", opts_.target_coverage);
  WM_CHECK(opts_.coverage_tolerance > 0.0,
           "coverage_tolerance must be positive");
  WM_CHECK(opts_.clear_fraction > 0.0 && opts_.clear_fraction <= 1.0,
           "clear_fraction must be in (0, 1], got ", opts_.clear_fraction);
  WM_CHECK(opts_.num_classes > 0, "num_classes must be positive");

  class_counts_.assign(static_cast<std::size_t>(opts_.num_classes), 0);
  class_mix_gauges_.reserve(class_counts_.size());
  for (int c = 0; c < opts_.num_classes; ++c) {
    class_mix_gauges_.push_back(&metrics_.gauge(
        "wm_monitor_class_mix_" + std::to_string(c),
        "windowed fraction of predictions for class " + std::to_string(c)));
  }
}

void SelectiveMonitor::observe(const SelectivePrediction& p) {
  observe(p, 0);
}

void SelectiveMonitor::observe(const SelectivePrediction& p,
                               std::uint64_t trace_id) {
  // Taken across update + dispatch so concurrent observe()/record_outcome()
  // threads deliver alarm transitions in the order they happened.
  const std::lock_guard<std::recursive_mutex> dispatch_lock(dispatch_mutex_);
  Transition transition = Transition::kNone;
  MonitorSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mutex_);

    if (trace_id != 0 && !p.selected) {
      // A handful of exemplars is enough for an operator to jump from the
      // alarm straight to concrete requests in the merged trace.
      constexpr std::size_t kMaxExemplars = 16;
      recent_abstained_traces_.push_back(trace_id);
      if (recent_abstained_traces_.size() > kMaxExemplars) {
        recent_abstained_traces_.pop_front();
      }
    }

    window_.push_back(p);
    if (p.selected) ++selected_in_window_;
    g_sum_in_window_ += static_cast<double>(p.g);
    if (p.label >= 0 && p.label < opts_.num_classes) {
      ++class_counts_[static_cast<std::size_t>(p.label)];
    }
    if (window_.size() > opts_.window) {
      const SelectivePrediction& old = window_.front();
      if (old.selected) --selected_in_window_;
      g_sum_in_window_ -= static_cast<double>(old.g);
      if (old.label >= 0 && old.label < opts_.num_classes) {
        --class_counts_[static_cast<std::size_t>(old.label)];
      }
      window_.pop_front();
    }

    const double abstained = p.selected ? 0.0 : 1.0;
    if (!ewma_seeded_) {
      abstention_ewma_ = abstained;
      g_ewma_ = static_cast<double>(p.g);
      ewma_seeded_ = true;
    } else {
      abstention_ewma_ += opts_.ewma_alpha * (abstained - abstention_ewma_);
      g_ewma_ += opts_.ewma_alpha * (static_cast<double>(p.g) - g_ewma_);
    }

    observations_total_.inc();
    transition = refresh_locked();
    if (transition != Transition::kNone) snap = snapshot_locked();
  }
  dispatch(transition, snap);
}

void SelectiveMonitor::observe_batch(
    std::span<const SelectivePrediction> preds) {
  for (const SelectivePrediction& p : preds) observe(p);
}

void SelectiveMonitor::record_outcome(const SelectivePrediction& p,
                                      int true_label) {
  const std::lock_guard<std::recursive_mutex> dispatch_lock(dispatch_mutex_);
  Transition transition = Transition::kNone;
  MonitorSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mutex_);

    const Outcome o{p.selected, p.label == true_label};
    outcomes_.push_back(o);
    if (o.selected) {
      ++outcome_selected_;
      if (!o.correct) ++outcome_errors_;
    }
    if (outcomes_.size() > opts_.window) {
      const Outcome& old = outcomes_.front();
      if (old.selected) {
        --outcome_selected_;
        if (!old.correct) --outcome_errors_;
      }
      outcomes_.pop_front();
    }

    outcomes_total_.inc();
    transition = refresh_locked();
    if (transition != Transition::kNone) snap = snapshot_locked();
  }
  dispatch(transition, snap);
}

std::uint64_t SelectiveMonitor::on_alarm(AlarmCallback cb) {
  const std::lock_guard<std::mutex> lock(callback_mutex_);
  const std::uint64_t id = next_callback_id_++;
  callbacks_.push_back({id, /*on_fire=*/true, std::move(cb)});
  return id;
}

std::uint64_t SelectiveMonitor::on_clear(AlarmCallback cb) {
  const std::lock_guard<std::mutex> lock(callback_mutex_);
  const std::uint64_t id = next_callback_id_++;
  callbacks_.push_back({id, /*on_fire=*/false, std::move(cb)});
  return id;
}

void SelectiveMonitor::remove_callback(std::uint64_t id) {
  // Barrier against in-flight delivery: once dispatch_mutex_ is held no
  // invocation copied before this removal can still be running, so the
  // caller may destroy the callback's captures the moment we return.
  // Recursive, so a callback removing itself does not self-deadlock.
  const std::lock_guard<std::recursive_mutex> dispatch_lock(dispatch_mutex_);
  const std::lock_guard<std::mutex> lock(callback_mutex_);
  for (std::size_t i = 0; i < callbacks_.size(); ++i) {
    if (callbacks_[i].id == id) {
      callbacks_.erase(callbacks_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void SelectiveMonitor::dispatch(Transition t, const MonitorSnapshot& snap) {
  if (t == Transition::kNone) return;
  const bool fired = t == Transition::kFired;
  // Copy the matching callbacks so a callback may register/remove hooks
  // (even itself) without invalidating the iteration.
  std::vector<AlarmCallback> to_run;
  {
    const std::lock_guard<std::mutex> lock(callback_mutex_);
    for (const Registration& r : callbacks_) {
      if (r.on_fire == fired) to_run.push_back(r.cb);
    }
  }
  for (const AlarmCallback& cb : to_run) cb(snap);
}

SelectiveMonitor::Transition SelectiveMonitor::refresh_locked() {
  const std::size_t n = window_.size();
  const double coverage =
      n == 0 ? 0.0
             : static_cast<double>(selected_in_window_) /
                   static_cast<double>(n);
  const double mean_g =
      n == 0 ? 0.0 : g_sum_in_window_ / static_cast<double>(n);
  // Empty selection carries zero risk (the Eq. 7 convention eval uses too).
  const double risk =
      outcome_selected_ == 0
          ? 0.0
          : static_cast<double>(outcome_errors_) /
                static_cast<double>(outcome_selected_);

  coverage_gauge_.set(coverage);
  abstention_gauge_.set(1.0 - coverage);
  abstention_ewma_gauge_.set(abstention_ewma_);
  mean_g_gauge_.set(mean_g);
  risk_gauge_.set(risk);
  window_fill_gauge_.set(static_cast<double>(n));
  for (std::size_t c = 0; c < class_counts_.size(); ++c) {
    class_mix_gauges_[c]->set(
        n == 0 ? 0.0
               : static_cast<double>(class_counts_[c]) /
                     static_cast<double>(n));
  }

  obs::trace_counter("monitor.coverage", coverage);
  obs::trace_counter("monitor.abstention_ewma", abstention_ewma_);
  obs::trace_counter("monitor.selective_risk", risk);

  // Alarm policy. Fire when a windowed statistic breaks its bound; clear
  // with hysteresis so a value oscillating around the bound does not flap.
  const double coverage_dev = coverage - opts_.target_coverage;
  const bool coverage_ready = n >= opts_.min_observations;
  const bool coverage_bad =
      coverage_ready &&
      (coverage_dev > opts_.coverage_tolerance ||
       coverage_dev < -opts_.coverage_tolerance);
  const bool risk_ready = outcome_selected_ >= opts_.min_outcomes;
  const bool risk_bad = risk_ready && risk > opts_.risk_threshold;

  if (!alarm_ && (coverage_bad || risk_bad)) {
    alarm_ = true;
    alarms_total_.inc();
    alarm_gauge_.set(1.0);
    // Exemplar trace ids (hex, space-separated) tie the alarm to concrete
    // requests findable in a merged distributed trace.
    std::string exemplars;
    for (const std::uint64_t id : recent_abstained_traces_) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(id));
      if (!exemplars.empty()) exemplars.push_back(' ');
      exemplars += buf;
    }
    run_log_.write(
        "drift_alarm",
        {{"cause", coverage_bad ? (risk_bad ? "coverage+risk" : "coverage")
                                : "risk"},
         {"coverage", coverage},
         {"target_coverage", opts_.target_coverage},
         {"coverage_tolerance", opts_.coverage_tolerance},
         {"selective_risk", risk},
         {"risk_threshold", opts_.risk_threshold},
         {"abstention_ewma", abstention_ewma_},
         {"window_fill", static_cast<std::uint64_t>(n)},
         {"abstained_trace_ids", exemplars}});
    return Transition::kFired;
  } else if (alarm_) {
    const double clear_cov_bound =
        opts_.coverage_tolerance * opts_.clear_fraction;
    const double clear_risk_bound = opts_.risk_threshold * opts_.clear_fraction;
    const bool coverage_cleared =
        !coverage_ready || (coverage_dev <= clear_cov_bound &&
                            coverage_dev >= -clear_cov_bound);
    const bool risk_cleared = !risk_ready || risk <= clear_risk_bound;
    if (coverage_cleared && risk_cleared) {
      alarm_ = false;
      alarm_gauge_.set(0.0);
      run_log_.write("drift_clear",
                     {{"coverage", coverage},
                      {"selective_risk", risk},
                      {"window_fill", static_cast<std::uint64_t>(n)}});
      return Transition::kCleared;
    }
  }
  return Transition::kNone;
}

std::vector<std::uint64_t> SelectiveMonitor::recent_abstained_traces() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {recent_abstained_traces_.begin(), recent_abstained_traces_.end()};
}

MonitorSnapshot SelectiveMonitor::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked();
}

MonitorSnapshot SelectiveMonitor::snapshot_locked() const {
  MonitorSnapshot s;
  s.observations = observations_total_.value();
  s.outcomes = outcomes_total_.value();
  s.window_fill = window_.size();
  s.outcome_fill = outcomes_.size();
  const std::size_t n = window_.size();
  s.coverage = n == 0 ? 0.0
                      : static_cast<double>(selected_in_window_) /
                            static_cast<double>(n);
  s.abstention_rate = n == 0 ? 0.0 : 1.0 - s.coverage;
  s.abstention_ewma = abstention_ewma_;
  s.mean_g = n == 0 ? 0.0 : g_sum_in_window_ / static_cast<double>(n);
  s.g_ewma = g_ewma_;
  s.selective_risk =
      outcome_selected_ == 0
          ? 0.0
          : static_cast<double>(outcome_errors_) /
                static_cast<double>(outcome_selected_);
  s.class_mix.resize(class_counts_.size());
  for (std::size_t c = 0; c < class_counts_.size(); ++c) {
    s.class_mix[c] = n == 0 ? 0.0
                            : static_cast<double>(class_counts_[c]) /
                                  static_cast<double>(n);
  }
  s.alarm = alarm_;
  s.alarms_total = alarms_total_.value();
  s.target_coverage = opts_.target_coverage;
  return s;
}

}  // namespace wm::serve

// Zero-downtime model hot-swap: a SwappableClassifier sits between the
// InferenceEngine and the real model so new weights can be promoted while
// traffic flows.
//
//   serve::SwappableClassifier swap(initial_classifier);
//   serve::InferenceEngine engine(swap, ...);
//   ...
//   swap.swap_to(candidate, canaries);   // atomic, between engine batches
//
// Versioning contract (the "zero dropped or mixed-version in-flight
// requests" guarantee):
//
//   * predict_batch pins the current version once per call, so every
//     micro-batch the engine flushes is served end-to-end by exactly one
//     model version — a swap can never split a batch across versions;
//   * the engine's batcher issues predict_batch calls sequentially, so the
//     promotion takes effect on the next batch boundary: requests queued
//     before the swap are answered (by whichever version their batch
//     pinned), never dropped;
//   * swap_to verifies the candidate on a canary set first — two direct
//     predict_batch passes must agree bit-for-bit (the determinism half of
//     the Classifier contract that batching correctness rests on) and the
//     class count must match the incumbent. A failed canary leaves the old
//     version serving and throws; the returned canary predictions are the
//     expected post-swap bits, so callers can bit-match end-to-end through
//     the engine/server/router (blue/green verification).
//
// Observability: the wm_serve_model_version gauge tracks the active version
// (starts at 1, +1 per promotion), wm_serve_model_swaps_total counts
// promotions, and every promotion writes a "model_swap" run-log event with
// the old/new version and the candidate label.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/classifier.hpp"

namespace wm::serve {

struct SwapOptions {
  /// Where wm_serve_model_version / wm_serve_model_swaps_total live.
  /// nullptr = a wrapper-private registry.
  obs::Registry* registry = nullptr;
  /// Human-readable name for run-log events (e.g. the model path).
  std::string name = "model";
};

class SwappableClassifier final : public Classifier {
 public:
  /// Starts serving `initial` as version 1. The shared_ptr keeps a retired
  /// version alive until the last batch pinned on it finishes.
  explicit SwappableClassifier(std::shared_ptr<const Classifier> initial,
                               const SwapOptions& opts = {});

  std::vector<SelectivePrediction> predict_batch(
      std::span<const WaferMap> maps) const override;
  int num_classes() const override;

  /// Canary-verifies `candidate` (see header comment), then atomically
  /// promotes it. Returns the candidate's canary predictions — the bits the
  /// serving path must produce after the swap. Throws wm::Error when the
  /// candidate is null, disagrees with itself on the canaries, or changes
  /// the class count; the incumbent keeps serving in every failure case.
  std::vector<SelectivePrediction> swap_to(
      std::shared_ptr<const Classifier> candidate,
      std::span<const WaferMap> canaries, const std::string& label = "");

  /// Active model version: 1 for the initial classifier, +1 per swap.
  std::uint64_t version() const;

  /// The currently serving classifier (pinned; safe across a swap).
  std::shared_ptr<const Classifier> current() const;

  std::uint64_t swaps() const { return swaps_total_.value(); }

 private:
  const SwapOptions opts_;
  mutable obs::Registry own_metrics_;  // used when opts_.registry == nullptr
  obs::Registry& metrics_;
  obs::Gauge& version_gauge_;
  obs::Counter& swaps_total_;

  mutable std::mutex mutex_;  // guards current_ + version_
  std::shared_ptr<const Classifier> current_;
  std::uint64_t version_ = 1;
};

/// True when two predictions are bit-identical (label, selection, and the
/// raw IEEE-754 bits of g / confidence). The canary comparison — exact
/// equality, not tolerance: remote serving already round-trips exact bits.
bool bit_equal(const SelectivePrediction& a, const SelectivePrediction& b);

}  // namespace wm::serve

// Streaming drift monitor for the selective risk/coverage operating point.
//
// The paper's deployment story calibrates an abstention threshold so the
// model selects a target fraction c0 of traffic (DESIGN.md §8); the one
// quantity an operator must watch in production is whether the live
// abstention rate and empirical selective risk drift away from that
// calibrated point — distribution shift shows up first in the rejector.
// SelectiveMonitor is the consumer of every SelectivePrediction flowing
// through the serving layer:
//
//   * a sliding window (default 512 results) of coverage / abstention rate,
//     per-class prediction mix, and mean selection score g(x);
//   * EWMA twins of abstention and g for a smoothed long-horizon view;
//   * empirical selective risk over a second window of ground-truth
//     outcomes supplied later through record_outcome() (labels usually
//     arrive minutes-to-days after the prediction, so risk has its own
//     feedback hook and window);
//   * threshold alarms: when the windowed coverage deviates from the
//     calibrated target by more than `coverage_tolerance` (either
//     direction), or the windowed selective risk exceeds `risk_threshold`,
//     the monitor raises an alarm — wm_monitor_alarm flips to 1, a
//     `drift_alarm` run-log event is emitted, and wm_monitor_alarms_total
//     increments. The alarm clears (with hysteresis: deviation must fall
//     back below clear_fraction x the firing bound) via a `drift_clear`
//     event.
//
// Every update also samples Perfetto counter tracks (monitor.coverage,
// monitor.abstention_ewma, monitor.selective_risk) so drift renders as
// value graphs next to the serve.flush spans — see obs/trace.hpp.
//
// Attach to an engine with EngineOptions::monitor (the batcher observes
// every prediction it fulfils) or call observe()/observe_batch() directly.
// All methods are thread-safe; observe() is one short critical section.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/run_log.hpp"
#include "serve/classifier.hpp"

namespace wm::serve {

struct MonitorOptions {
  /// Sliding-window length (results) for coverage, class mix, and mean g;
  /// also the window for labeled outcomes (selective risk).
  std::size_t window = 512;
  /// EWMA smoothing factor in (0, 1]: ewma += alpha * (x - ewma).
  double ewma_alpha = 0.05;
  /// The calibrated operating point: target coverage c0 in (0, 1].
  double target_coverage = 0.5;
  /// Alarm when |windowed coverage - target_coverage| exceeds this.
  double coverage_tolerance = 0.15;
  /// Alarm when the windowed selective risk exceeds this (1.0 disables the
  /// risk alarm; risk is only checked once min_outcomes labels arrived).
  double risk_threshold = 1.0;
  /// Observations required in the window before coverage alarms may fire.
  std::size_t min_observations = 64;
  /// Labeled outcomes required before risk alarms may fire.
  std::size_t min_outcomes = 32;
  /// Hysteresis: an active alarm clears only when every deviation falls
  /// below clear_fraction x its firing bound. In (0, 1].
  double clear_fraction = 0.5;
  /// Label-index range for the per-class prediction mix gauges.
  int num_classes = 9;
  /// Where the wm_monitor_* instruments live. nullptr = a monitor-private
  /// registry (mirrors EngineOptions::registry); pass
  /// &obs::Registry::global() to merge with engine/trainer metrics.
  obs::Registry* registry = nullptr;
  /// Sink for drift_alarm / drift_clear events. nullptr = the process-wide
  /// obs::run_log_global().
  obs::RunLog* run_log = nullptr;
};

/// Point-in-time copy of everything the monitor tracks.
struct MonitorSnapshot {
  std::uint64_t observations = 0;  // lifetime observe() count
  std::uint64_t outcomes = 0;      // lifetime record_outcome() count
  std::size_t window_fill = 0;     // results currently in the window
  std::size_t outcome_fill = 0;    // labeled outcomes currently windowed
  double coverage = 0.0;           // windowed selected fraction
  double abstention_rate = 0.0;    // 1 - coverage
  double abstention_ewma = 0.0;
  double mean_g = 0.0;             // windowed mean selection score
  double g_ewma = 0.0;
  double selective_risk = 0.0;     // windowed error rate among selected
  std::vector<double> class_mix;   // windowed predicted-label fractions
  bool alarm = false;
  std::uint64_t alarms_total = 0;
  double target_coverage = 0.0;

  /// Multi-line human-readable dump (the /stats endpoint's second half).
  std::string to_string() const;
};

class SelectiveMonitor {
 public:
  explicit SelectiveMonitor(const MonitorOptions& opts = {});

  SelectiveMonitor(const SelectiveMonitor&) = delete;
  SelectiveMonitor& operator=(const SelectiveMonitor&) = delete;

  /// Feeds one prediction into the windows, updates the gauges and counter
  /// tracks, and re-evaluates the alarm. The trace-id overload additionally
  /// remembers the ids of recently abstained traced requests (a small ring)
  /// so a drift_alarm event names concrete exemplar requests an operator
  /// can pull out of the merged trace; trace_id 0 behaves like the plain
  /// overload.
  void observe(const SelectivePrediction& p);
  void observe(const SelectivePrediction& p, std::uint64_t trace_id);
  void observe_batch(std::span<const SelectivePrediction> preds);

  /// Trace ids of recently observed abstained requests, oldest first.
  std::vector<std::uint64_t> recent_abstained_traces() const;

  /// Ground-truth feedback: the prediction as served plus the later-arriving
  /// true label. Drives the windowed empirical selective risk.
  void record_outcome(const SelectivePrediction& p, int true_label);

  /// Push-style alarm hooks: the registered callback runs exactly once per
  /// hysteresis transition (fire for on_alarm, clear for on_clear), with a
  /// snapshot taken at the transition. Callbacks are invoked on the thread
  /// that drove the transition (usually the engine batcher) but OUTSIDE the
  /// monitor's data lock, so a callback may call snapshot()/observe() or do
  /// real work — though serving-path callers should stay cheap and hand off
  /// (the adaptation controller just flips a flag and notifies its worker).
  /// Delivery is serialized IN TRANSITION ORDER across threads: a fire and
  /// the clear that follows it (e.g. observe() on the batcher thread vs.
  /// record_outcome() on a feedback thread) can never reach the callbacks
  /// reordered, so a subscriber mirroring the alarm state stays consistent.
  /// Returns a registration id for remove_callback(); the callback must stay
  /// valid until removed or the monitor is destroyed. remove_callback()
  /// blocks until any in-flight invocation returns, so after it returns the
  /// callback will never run again and its captures may be destroyed (a
  /// callback may still remove itself — same-thread re-entry is allowed).
  using AlarmCallback = std::function<void(const MonitorSnapshot&)>;
  std::uint64_t on_alarm(AlarmCallback cb);
  std::uint64_t on_clear(AlarmCallback cb);
  void remove_callback(std::uint64_t id);

  MonitorSnapshot snapshot() const;

  const MonitorOptions& options() const { return opts_; }

  /// The registry holding this monitor's instruments.
  obs::Registry& metrics_registry() const { return metrics_; }

 private:
  struct Outcome {
    bool selected;
    bool correct;
  };

  /// What refresh_locked() did to the alarm state this update.
  enum class Transition { kNone, kFired, kCleared };

  /// Recomputes windowed stats, publishes gauges/counters, fires or clears
  /// the alarm. Caller holds mutex_. Returns the alarm transition so the
  /// caller can dispatch registered callbacks after releasing the lock.
  Transition refresh_locked();

  /// snapshot() body. Caller holds mutex_.
  MonitorSnapshot snapshot_locked() const;

  /// Copies the matching callbacks (under callback_mutex_) and invokes them.
  /// Must be called WITHOUT mutex_ held and WITH dispatch_mutex_ held.
  void dispatch(Transition t, const MonitorSnapshot& snap);

  const MonitorOptions opts_;

  mutable obs::Registry own_metrics_;  // used when opts_.registry == nullptr
  obs::Registry& metrics_;
  obs::RunLog& run_log_;
  obs::Counter& observations_total_;
  obs::Counter& outcomes_total_;
  obs::Counter& alarms_total_;
  obs::Gauge& coverage_gauge_;
  obs::Gauge& abstention_gauge_;
  obs::Gauge& abstention_ewma_gauge_;
  obs::Gauge& mean_g_gauge_;
  obs::Gauge& risk_gauge_;
  obs::Gauge& alarm_gauge_;
  obs::Gauge& window_fill_gauge_;
  std::vector<obs::Gauge*> class_mix_gauges_;

  mutable std::mutex mutex_;
  std::deque<SelectivePrediction> window_;
  std::deque<std::uint64_t> recent_abstained_traces_;  // bounded exemplars
  std::deque<Outcome> outcomes_;
  std::size_t selected_in_window_ = 0;
  double g_sum_in_window_ = 0.0;
  std::vector<std::size_t> class_counts_;
  std::size_t outcome_selected_ = 0;
  std::size_t outcome_errors_ = 0;
  double abstention_ewma_ = 0.0;
  double g_ewma_ = 0.0;
  bool ewma_seeded_ = false;
  bool alarm_ = false;

  // Dispatch serialization. Held (recursively, so callbacks may re-enter
  // observe()/record_outcome() or remove themselves) around every
  // update + callback delivery: without it, refresh_locked() could compute
  // kFired on one thread and kCleared on another, then deliver them in the
  // opposite order once mutex_ is released — leaving a state-mirroring
  // subscriber permanently wrong. remove_callback() also takes it, which is
  // what makes removal a barrier against in-flight invocations. Ordering:
  // dispatch_mutex_ -> mutex_ / callback_mutex_, never the reverse.
  mutable std::recursive_mutex dispatch_mutex_;

  // Callback registry. A separate mutex so a callback body may re-enter the
  // monitor (snapshot(), observe()) without deadlocking, and registration
  // never contends with the observe() hot path.
  struct Registration {
    std::uint64_t id;
    bool on_fire;  // true: runs on kFired; false: runs on kCleared
    AlarmCallback cb;
  };
  mutable std::mutex callback_mutex_;
  std::vector<Registration> callbacks_;
  std::uint64_t next_callback_id_ = 1;
};

}  // namespace wm::serve

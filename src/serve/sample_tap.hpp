// Engine-side sample tap: the hook the adaptation layer hangs its sliding
// sample buffer on.
//
// The SelectiveMonitor sees only predictions (coverage/risk statistics); the
// drift-adaptation loop additionally needs the wafers themselves — re-fitting
// the abstention threshold wants the recent g-score distribution, and
// stage-2 fine-tuning wants the actual abstained/misclassified maps. Rather
// than buffering inside the engine, EngineOptions::sample_tap lets any
// consumer observe every (wafer, prediction) pair the batcher fulfils.
//
// Contract: on_sample() is called from the batcher thread, after the monitor
// feed and before the request futures resolve, once per request of every
// successful flush (errored batches are not tapped), in request order. The
// map reference is only valid for the duration of the call — copy what you
// keep. Implementations must be cheap and must not throw; heavy work (CAE
// training, fine-tuning) belongs on the consumer's own thread.
#pragma once

#include "serve/classifier.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm::serve {

class SampleTap {
 public:
  virtual ~SampleTap() = default;

  /// One fulfilled request: the wafer as submitted and the prediction the
  /// engine returned for it.
  virtual void on_sample(const WaferMap& map,
                         const SelectivePrediction& pred) = 0;
};

}  // namespace wm::serve

// serve::ServerConfig — one aggregated configuration for a serving replica.
//
// Before this existed, every surface that stood up a server re-implemented
// its own slice of the knob sprawl: wm_tool read WM_SERVE_PORT itself,
// loadgen hard-coded engine queue/batch numbers, tests passed ad-hoc
// ServerOptions, and WM_HTTP_PORT was consulted in yet another place. A
// ServerConfig resolves every knob in one spot with one precedence rule:
//
//   explicit field  >  environment variable  >  built-in default
//
// Fields are std::optional: an unset field falls through to its env var
// (parsed with the hardened common/env.hpp helper — malformed values warn
// and fall through to the default, never half-apply), and then to the
// default. resolve() produces the final plain-value view; engine_options()
// / server_options() / exporter_options() adapt it to the per-subsystem
// option structs so one config stands up a whole replica:
//
//   serve::ServerConfig cfg{.port = 9000, .workers = 4};
//   serve::InferenceEngine engine(clf, cfg.engine_options(&reg, &monitor));
//   net::Server server(engine, cfg.server_options());
//
// Environment variables (all hardened, all optional):
//   WM_SERVE_PORT            TCP port                  [1, 65535]
//   WM_SERVE_BACKLOG         kernel accept backlog     [1, 4096]
//   WM_SERVE_WORKERS         connection worker threads [1, 256]
//   WM_SERVE_MAX_BATCH       engine micro-batch size   [1, 4096]
//   WM_SERVE_MAX_DELAY_US    engine flush delay        [0, 10^7]
//   WM_SERVE_QUEUE_CAPACITY  engine queue bound        [1, 10^6]
//   WM_HTTP_PORT             /metrics + /healthz port  [1, 65535]
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/server.hpp"
#include "obs/http_exporter.hpp"
#include "serve/inference_engine.hpp"

namespace wm::serve {

struct ServerConfig {
  /// TCP port for the wire protocol; 0 = ephemeral. Env: WM_SERVE_PORT.
  std::optional<int> port;
  /// Kernel accept backlog. Env: WM_SERVE_BACKLOG, default 64.
  std::optional<int> backlog;
  /// Connection worker threads. Env: WM_SERVE_WORKERS, default 2.
  std::optional<int> workers;
  /// HTTP exporter (/metrics, /healthz) port; unset everywhere = no
  /// exporter, 0 = ephemeral. Env: WM_HTTP_PORT.
  std::optional<int> http_port;
  /// Engine micro-batch size. Env: WM_SERVE_MAX_BATCH, default 32.
  std::optional<int> max_batch;
  /// Engine flush delay. Env: WM_SERVE_MAX_DELAY_US, default 2000.
  std::optional<std::int64_t> max_delay_us;
  /// Engine queue bound. Env: WM_SERVE_QUEUE_CAPACITY, default 256.
  std::optional<std::size_t> queue_capacity;
  /// Per-socket IO timeout (no env knob), default 5000.
  std::optional<int> io_timeout_ms;
  /// Listen address (no env knob), default loopback.
  std::string bind_address = "127.0.0.1";

  /// The fully resolved view: every knob a concrete value.
  struct Resolved {
    int port = 0;
    int backlog = 64;
    int workers = 2;
    std::optional<int> http_port;  // still optional: unset = no exporter
    int max_batch = 32;
    std::int64_t max_delay_us = 2000;
    std::size_t queue_capacity = 256;
    int io_timeout_ms = 5000;
    std::string bind_address = "127.0.0.1";
  };

  /// Applies explicit-field > env > default to every knob.
  Resolved resolve() const;

  /// EngineOptions from the resolved config (registry/monitor pass through).
  EngineOptions engine_options(obs::Registry* registry = nullptr,
                               SelectiveMonitor* monitor = nullptr) const;

  /// net::ServerOptions from the resolved config.
  net::ServerOptions server_options(obs::Registry* registry = nullptr) const;

  /// HttpExporterOptions when an http_port is configured anywhere
  /// (field or WM_HTTP_PORT); nullopt = don't start an exporter.
  std::optional<obs::HttpExporterOptions> exporter_options(
      obs::Registry* registry = nullptr) const;
};

}  // namespace wm::serve

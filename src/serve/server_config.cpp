#include "serve/server_config.hpp"

#include "common/env.hpp"

namespace wm::serve {

namespace {

/// explicit field > env var (hardened) > default.
template <typename T>
T pick(const std::optional<T>& field, const char* env_name, std::int64_t lo,
       std::int64_t hi, T fallback) {
  if (field) return *field;
  if (const auto v = env_int(env_name, lo, hi)) return static_cast<T>(*v);
  return fallback;
}

}  // namespace

ServerConfig::Resolved ServerConfig::resolve() const {
  Resolved r;
  r.port = pick(port, "WM_SERVE_PORT", 1, 65535, 0);
  r.backlog = pick(backlog, "WM_SERVE_BACKLOG", 1, 4096, 64);
  r.workers = pick(workers, "WM_SERVE_WORKERS", 1, 256, 2);
  r.max_batch = pick(max_batch, "WM_SERVE_MAX_BATCH", 1, 4096, 32);
  r.max_delay_us = pick<std::int64_t>(max_delay_us, "WM_SERVE_MAX_DELAY_US", 0,
                                      10'000'000, 2000);
  r.queue_capacity = pick<std::size_t>(queue_capacity,
                                       "WM_SERVE_QUEUE_CAPACITY", 1,
                                       1'000'000, 256);
  r.io_timeout_ms = io_timeout_ms.value_or(5000);
  r.bind_address = bind_address;
  // http_port stays optional: "no exporter" is a real configuration, so
  // only the field or the env var can turn it on.
  if (http_port) {
    r.http_port = *http_port;
  } else if (const auto v = env_int("WM_HTTP_PORT", 1, 65535)) {
    r.http_port = static_cast<int>(*v);
  }
  return r;
}

EngineOptions ServerConfig::engine_options(obs::Registry* registry,
                                           SelectiveMonitor* monitor) const {
  const Resolved r = resolve();
  EngineOptions o;
  o.max_batch = r.max_batch;
  o.max_delay_us = r.max_delay_us;
  o.queue_capacity = r.queue_capacity;
  o.registry = registry;
  o.monitor = monitor;
  return o;
}

net::ServerOptions ServerConfig::server_options(obs::Registry* registry) const {
  const Resolved r = resolve();
  net::ServerOptions o;
  o.port = r.port;
  o.bind_address = r.bind_address;
  o.backlog = r.backlog;
  o.workers = r.workers;
  o.io_timeout_ms = r.io_timeout_ms;
  o.registry = registry;
  return o;
}

std::optional<obs::HttpExporterOptions> ServerConfig::exporter_options(
    obs::Registry* registry) const {
  const Resolved r = resolve();
  if (!r.http_port) return std::nullopt;
  obs::HttpExporterOptions o;
  o.port = *r.http_port;
  o.bind_address = r.bind_address;
  o.registry = registry;
  o.io_timeout_ms = r.io_timeout_ms;
  return o;
}

}  // namespace wm::serve

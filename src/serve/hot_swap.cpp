#include "serve/hot_swap.hpp"

#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/run_log.hpp"

namespace wm::serve {

bool bit_equal(const SelectivePrediction& a, const SelectivePrediction& b) {
  return a.label == b.label && a.selected == b.selected &&
         std::memcmp(&a.g, &b.g, sizeof(float)) == 0 &&
         std::memcmp(&a.confidence, &b.confidence, sizeof(float)) == 0;
}

SwappableClassifier::SwappableClassifier(
    std::shared_ptr<const Classifier> initial, const SwapOptions& opts)
    : opts_(opts),
      metrics_(opts_.registry != nullptr ? *opts_.registry : own_metrics_),
      version_gauge_(metrics_.gauge("wm_serve_model_version",
                                    "active model version (1 = initial)")),
      swaps_total_(metrics_.counter("wm_serve_model_swaps_total",
                                    "successful hot-swap promotions")),
      current_(std::move(initial)) {
  WM_CHECK(current_ != nullptr, "SwappableClassifier needs a classifier");
  version_gauge_.set(1.0);
}

std::vector<SelectivePrediction> SwappableClassifier::predict_batch(
    std::span<const WaferMap> maps) const {
  // Pin one version for the whole batch; a concurrent swap_to affects only
  // subsequent calls. The shared_ptr keeps a retired model alive until this
  // batch (and any other still pinned on it) returns.
  std::shared_ptr<const Classifier> pinned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pinned = current_;
  }
  return pinned->predict_batch(maps);
}

int SwappableClassifier::num_classes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_->num_classes();
}

std::vector<SelectivePrediction> SwappableClassifier::swap_to(
    std::shared_ptr<const Classifier> candidate,
    std::span<const WaferMap> canaries, const std::string& label) {
  WM_CHECK(candidate != nullptr, "swap_to: null candidate");

  // Canary verification runs entirely off the serving path: the incumbent
  // keeps answering traffic, and nothing below throws after the promotion.
  const int incumbent_classes = num_classes();
  WM_CHECK(candidate->num_classes() == incumbent_classes,
           "swap_to: candidate has ", candidate->num_classes(),
           " classes, incumbent has ", incumbent_classes);

  std::vector<SelectivePrediction> expected;
  if (!canaries.empty()) {
    expected = candidate->predict_batch(canaries);
    WM_CHECK(expected.size() == canaries.size(),
             "swap_to: candidate broke the predict_batch contract");
    const std::vector<SelectivePrediction> again =
        candidate->predict_batch(canaries);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      WM_CHECK(bit_equal(expected[i], again[i]),
               "swap_to: candidate is non-deterministic on canary ", i,
               "; refusing to promote");
    }
  }

  std::uint64_t from = 0;
  std::uint64_t to = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    from = version_;
    to = ++version_;
    current_ = std::move(candidate);
  }
  version_gauge_.set(static_cast<double>(to));
  swaps_total_.inc();
  obs::run_log_global().write(
      "model_swap",
      {{"name", opts_.name},
       {"label", label},
       {"from_version", from},
       {"to_version", to},
       {"canaries", static_cast<std::uint64_t>(canaries.size())}});
  log_info("hot-swap: ", opts_.name, " v", from, " -> v", to,
           label.empty() ? "" : " (", label, label.empty() ? "" : ")",
           ", verified on ", canaries.size(), " canaries");
  return expected;
}

std::uint64_t SwappableClassifier::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

std::shared_ptr<const Classifier> SwappableClassifier::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

}  // namespace wm::serve

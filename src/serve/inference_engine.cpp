#include "serve/inference_engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "serve/monitor.hpp"
#include "serve/sample_tap.hpp"

namespace wm::serve {

namespace {

/// steady_clock epoch offset in ns — the same timeline as
/// obs::trace_clock_ns(), so RequestTiming stamps align with trace spans.
std::int64_t to_ns(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

std::string EngineStats::to_string() const {
  std::ostringstream os;
  os << "requests:  " << requests << " (abstained " << abstained << ", shed "
     << shed << ")\n";
  os << "batches:   " << batches << " (mean size ";
  os.precision(2);
  os << std::fixed << mean_batch_size() << ", full " << full_flushes
     << ", timer " << timer_flushes << ")\n";
  os << "latency:   mean " << static_cast<std::int64_t>(latency.mean_us())
     << " us, p50 <= " << latency.quantile_us(0.50) << " us, p95 <= "
     << latency.quantile_us(0.95) << " us, p99 <= "
     << latency.quantile_us(0.99) << " us\n";
  os << latency.to_string();
  return os.str();
}

InferenceEngine::InferenceEngine(const Classifier& classifier,
                                 const EngineOptions& opts)
    : classifier_(classifier),
      opts_(opts),
      metrics_(opts_.registry != nullptr ? *opts_.registry : own_metrics_),
      requests_total_(metrics_.counter("wm_serve_requests_total",
                                       "completed requests (futures fulfilled)")),
      batches_total_(metrics_.counter("wm_serve_batches_total",
                                      "predict_batch calls issued")),
      abstained_total_(metrics_.counter("wm_serve_abstained_total",
                                        "results with selected == false")),
      full_flushes_total_(metrics_.counter("wm_serve_full_flushes_total",
                                           "batches flushed at max_batch")),
      timer_flushes_total_(metrics_.counter(
          "wm_serve_timer_flushes_total", "batches flushed by timer / drain")),
      shed_total_(metrics_.counter("wm_serve_shed_total",
                                   "try_submit() rejections (queue full)")),
      queue_depth_gauge_(metrics_.gauge("wm_serve_queue_depth",
                                        "requests queued, batch in flight excluded")),
      batch_size_hist_(metrics_.histogram("wm_serve_batch_size",
                                          obs::Histogram::size_bounds(), "",
                                          "requests per flushed batch")),
      latency_hist_(metrics_.histogram("wm_serve_request_latency_us",
                                       obs::Histogram::latency_bounds_us(),
                                       "us",
                                       "per-request enqueue-to-result latency")),
      stage_queue_hist_(metrics_.histogram(
          "wm_stage_queue_wait_us", obs::Histogram::latency_bounds_us(), "us",
          "engine stage: enqueue to batcher pickup")),
      stage_batch_hist_(metrics_.histogram(
          "wm_stage_batch_wait_us", obs::Histogram::latency_bounds_us(), "us",
          "engine stage: batch-formation window wait")),
      stage_compute_hist_(metrics_.histogram(
          "wm_stage_compute_us", obs::Histogram::latency_bounds_us(), "us",
          "engine stage: predict_batch compute")) {
  WM_CHECK(opts.max_batch > 0, "max_batch must be positive");
  WM_CHECK(opts.max_delay_us >= 0, "max_delay_us must be non-negative");
  WM_CHECK(opts.queue_capacity > 0, "queue_capacity must be positive");
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::future<SelectivePrediction> InferenceEngine::submit(WaferMap map) {
  return submit(std::move(map), obs::TraceContext{}, nullptr);
}

std::future<SelectivePrediction> InferenceEngine::submit(
    WaferMap map, obs::TraceContext trace,
    std::shared_ptr<RequestTiming> timing) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [&] {
    return stopping_ || queue_.size() < opts_.queue_capacity;
  });
  WM_CHECK(!stopping_, "submit() on a shut-down engine");
  const Clock::time_point now = Clock::now();
  if (timing) timing->enqueue_ns = to_ns(now);
  queue_.push_back(
      Request{std::move(map), {}, now, trace, std::move(timing)});
  std::future<SelectivePrediction> fut = queue_.back().promise.get_future();
  queue_depth_gauge_.set(static_cast<double>(queue_.size()));
  obs::trace_counter("serve.queue_depth", static_cast<double>(queue_.size()));
  lock.unlock();
  queue_cv_.notify_one();
  return fut;
}

std::optional<std::future<SelectivePrediction>> InferenceEngine::try_submit(
    WaferMap map) {
  return try_submit(std::move(map), obs::TraceContext{}, nullptr);
}

std::optional<std::future<SelectivePrediction>> InferenceEngine::try_submit(
    WaferMap map, obs::TraceContext trace,
    std::shared_ptr<RequestTiming> timing) {
  std::unique_lock<std::mutex> lock(mutex_);
  WM_CHECK(!stopping_, "try_submit() on a shut-down engine");
  if (queue_.size() >= opts_.queue_capacity) {
    shed_total_.inc();
    return std::nullopt;
  }
  const Clock::time_point now = Clock::now();
  if (timing) timing->enqueue_ns = to_ns(now);
  queue_.push_back(
      Request{std::move(map), {}, now, trace, std::move(timing)});
  std::future<SelectivePrediction> fut = queue_.back().promise.get_future();
  queue_depth_gauge_.set(static_cast<double>(queue_.size()));
  obs::trace_counter("serve.queue_depth", static_cast<double>(queue_.size()));
  lock.unlock();
  queue_cv_.notify_one();
  return fut;
}

SelectivePrediction InferenceEngine::predict(const WaferMap& map) {
  return submit(map).get();
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  // Serialise the join so concurrent shutdown()/destructor calls are safe.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (batcher_.joinable()) batcher_.join();
}

bool InferenceEngine::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !stopping_;
}

std::size_t InferenceEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

EngineStats InferenceEngine::stats() const {
  // The batcher updates all instruments while holding mutex_, so reading
  // them under the same lock yields a consistent snapshot (e.g. requests
  // always equals latency.count()).
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats s;
  s.requests = requests_total_.value();
  s.batches = batches_total_.value();
  s.abstained = abstained_total_.value();
  s.full_flushes = full_flushes_total_.value();
  s.timer_flushes = timer_flushes_total_.value();
  s.shed = shed_total_.value();
  static_cast<obs::HistogramSnapshot&>(s.latency) = latency_hist_.snapshot();
  return s;
}

std::string InferenceEngine::stats_text() const {
  return metrics_.prometheus_text();
}

void InferenceEngine::batcher_loop() {
  const auto max_batch = static_cast<std::size_t>(opts_.max_batch);
  for (;;) {
    std::vector<Request> batch;
    bool full_flush = false;
    std::int64_t wake_ns = 0;
    std::int64_t formed_ns = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      wake_ns = to_ns(Clock::now());
      if (!stopping_ && queue_.size() < max_batch && opts_.max_delay_us > 0) {
        // Hold the window open for more requests, but no longer than
        // max_delay_us past the oldest one already waiting.
        const auto deadline =
            queue_.front().enqueued +
            std::chrono::microseconds(opts_.max_delay_us);
        queue_cv_.wait_until(lock, deadline, [&] {
          return stopping_ || queue_.size() >= max_batch;
        });
      }
      formed_ns = to_ns(Clock::now());
      const std::size_t take = std::min(queue_.size(), max_batch);
      full_flush = take == max_batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_gauge_.set(static_cast<double>(queue_.size()));
      obs::trace_counter("serve.queue_depth",
                         static_cast<double>(queue_.size()));
    }
    space_cv_.notify_all();  // queue shrank: unblock producers

    std::vector<WaferMap> maps;
    maps.reserve(batch.size());
    for (Request& r : batch) maps.push_back(std::move(r.map));
    std::vector<SelectivePrediction> preds;
    std::exception_ptr error;
    try {
      WM_TRACE_SCOPE("serve.flush");
      preds = classifier_.predict_batch(maps);
      WM_CHECK(preds.size() == batch.size(),
               "classifier broke the predict_batch contract: ", preds.size(),
               " results for ", batch.size(), " maps");
    } catch (...) {
      error = std::current_exception();
    }
    const Clock::time_point done = Clock::now();
    const std::int64_t done_ns = to_ns(done);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      batches_total_.inc();
      (full_flush ? full_flushes_total_ : timer_flushes_total_).inc();
      batch_size_hist_.record(static_cast<std::int64_t>(batch.size()));
      requests_total_.inc(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!error) abstained_total_.inc(!preds[i].selected);
        latency_hist_.record(
            std::chrono::duration_cast<std::chrono::microseconds>(
                done - batch[i].enqueued)
                .count());
        // Per-stage attribution. A request that arrived during the window
        // wait has enqueue > wake: its queue wait is 0 and its batch wait
        // starts at its own enqueue.
        const std::int64_t enq_ns = to_ns(batch[i].enqueued);
        const std::int64_t picked_ns = std::max(wake_ns, enq_ns);
        stage_queue_hist_.record((picked_ns - enq_ns) / 1000);
        stage_batch_hist_.record(
            std::max<std::int64_t>(formed_ns - picked_ns, 0) / 1000);
        stage_compute_hist_.record((done_ns - formed_ns) / 1000);
      }
    }
    // Monitor before fulfilling the futures so a caller that polls the
    // monitor right after .get() already sees its own prediction counted.
    if (opts_.monitor != nullptr && !error) {
      bool any_trace = false;
      for (const Request& r : batch) any_trace |= r.trace.trace_id != 0;
      if (any_trace) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          opts_.monitor->observe(preds[i], batch[i].trace.trace_id);
        }
      } else {
        opts_.monitor->observe_batch(preds);
      }
    }
    // Sample tap after the monitor: a tap consumer reacting to a monitor
    // alarm already finds the triggering wafer in its buffer. The maps
    // vector still owns every wafer (moved out of the requests above).
    if (opts_.sample_tap != nullptr && !error) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        opts_.sample_tap->on_sample(maps[i], preds[i]);
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Publish stage timestamps before set_value: the future's readiness
      // is the release/acquire edge a remote front-end reads them through.
      const std::int64_t enq_ns = to_ns(batch[i].enqueued);
      const std::int64_t picked_ns = std::max(wake_ns, enq_ns);
      if (batch[i].timing) {
        batch[i].timing->wake_ns = picked_ns;
        batch[i].timing->formed_ns = std::max(formed_ns, picked_ns);
        batch[i].timing->done_ns = done_ns;
      }
      if (batch[i].trace.active()) {
        const std::uint64_t id = batch[i].trace.trace_id;
        obs::trace_span_at("engine.queue", enq_ns, picked_ns, id);
        obs::trace_span_at("engine.batch", picked_ns,
                           std::max(formed_ns, picked_ns), id);
        obs::trace_span_at("engine.compute", formed_ns, done_ns, id);
        obs::trace_flow('t', id, (formed_ns + done_ns) / 2);
      }
      if (error) {
        batch[i].promise.set_exception(error);
      } else {
        batch[i].promise.set_value(preds[i]);
      }
    }
  }
}

}  // namespace wm::serve

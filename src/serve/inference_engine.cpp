#include "serve/inference_engine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace wm::serve {

void LatencyHistogram::record(std::int64_t us) {
  us = std::max<std::int64_t>(us, 0);
  std::size_t b = 0;
  while (b < kBoundsUs.size() && us > kBoundsUs[b]) ++b;
  ++buckets_[b];
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

double LatencyHistogram::mean_us() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_us_) /
                           static_cast<double>(count_);
}

std::int64_t LatencyHistogram::quantile_us(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cum += buckets_[b];
    if (cum >= target) {
      // Never report a bound beyond the observed maximum (and the overflow
      // bucket has no bound of its own).
      return b < kBoundsUs.size() ? std::min(kBoundsUs[b], max_us_) : max_us_;
    }
  }
  return max_us_;
}

std::string LatencyHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    if (b < kBoundsUs.size()) {
      os << "  <= " << kBoundsUs[b] << " us: " << buckets_[b] << "\n";
    } else {
      os << "  >  " << kBoundsUs.back() << " us: " << buckets_[b] << "\n";
    }
  }
  return os.str();
}

std::string EngineStats::to_string() const {
  std::ostringstream os;
  os << "requests:  " << requests << " (abstained " << abstained << ")\n";
  os << "batches:   " << batches << " (mean size ";
  os.precision(2);
  os << std::fixed << mean_batch_size() << ", full " << full_flushes
     << ", timer " << timer_flushes << ")\n";
  os << "latency:   mean " << static_cast<std::int64_t>(latency.mean_us())
     << " us, p50 <= " << latency.quantile_us(0.50) << " us, p95 <= "
     << latency.quantile_us(0.95) << " us, p99 <= "
     << latency.quantile_us(0.99) << " us\n";
  os << latency.to_string();
  return os.str();
}

InferenceEngine::InferenceEngine(const Classifier& classifier,
                                 const EngineOptions& opts)
    : classifier_(classifier), opts_(opts) {
  WM_CHECK(opts.max_batch > 0, "max_batch must be positive");
  WM_CHECK(opts.max_delay_us >= 0, "max_delay_us must be non-negative");
  WM_CHECK(opts.queue_capacity > 0, "queue_capacity must be positive");
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::future<SelectivePrediction> InferenceEngine::submit(WaferMap map) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [&] {
    return stopping_ || queue_.size() < opts_.queue_capacity;
  });
  WM_CHECK(!stopping_, "submit() on a shut-down engine");
  queue_.push_back(Request{std::move(map), {}, Clock::now()});
  std::future<SelectivePrediction> fut = queue_.back().promise.get_future();
  lock.unlock();
  queue_cv_.notify_one();
  return fut;
}

SelectivePrediction InferenceEngine::predict(const WaferMap& map) {
  return submit(map).get();
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  // Serialise the join so concurrent shutdown()/destructor calls are safe.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (batcher_.joinable()) batcher_.join();
}

bool InferenceEngine::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !stopping_;
}

std::size_t InferenceEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void InferenceEngine::batcher_loop() {
  const auto max_batch = static_cast<std::size_t>(opts_.max_batch);
  for (;;) {
    std::vector<Request> batch;
    bool full_flush = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      if (!stopping_ && queue_.size() < max_batch && opts_.max_delay_us > 0) {
        // Hold the window open for more requests, but no longer than
        // max_delay_us past the oldest one already waiting.
        const auto deadline =
            queue_.front().enqueued +
            std::chrono::microseconds(opts_.max_delay_us);
        queue_cv_.wait_until(lock, deadline, [&] {
          return stopping_ || queue_.size() >= max_batch;
        });
      }
      const std::size_t take = std::min(queue_.size(), max_batch);
      full_flush = take == max_batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    space_cv_.notify_all();  // queue shrank: unblock producers

    std::vector<WaferMap> maps;
    maps.reserve(batch.size());
    for (Request& r : batch) maps.push_back(std::move(r.map));
    std::vector<SelectivePrediction> preds;
    std::exception_ptr error;
    try {
      preds = classifier_.predict_batch(maps);
      WM_CHECK(preds.size() == batch.size(),
               "classifier broke the predict_batch contract: ", preds.size(),
               " results for ", batch.size(), " maps");
    } catch (...) {
      error = std::current_exception();
    }
    const Clock::time_point done = Clock::now();

    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.batches;
      ++(full_flush ? stats_.full_flushes : stats_.timer_flushes);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ++stats_.requests;
        if (!error) stats_.abstained += !preds[i].selected;
        stats_.latency.record(
            std::chrono::duration_cast<std::chrono::microseconds>(
                done - batch[i].enqueued)
                .count());
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (error) {
        batch[i].promise.set_exception(error);
      } else {
        batch[i].promise.set_value(preds[i]);
      }
    }
  }
}

}  // namespace wm::serve

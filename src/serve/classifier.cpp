#include "serve/classifier.hpp"

#include "common/error.hpp"

namespace wm {

SelectivePrediction Classifier::predict_one(const WaferMap& map) const {
  return predict_batch(std::span<const WaferMap>(&map, 1)).front();
}

std::vector<SelectivePrediction> predict_dataset(const Classifier& classifier,
                                                 const Dataset& data) {
  std::vector<WaferMap> maps;
  maps.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) maps.push_back(data[i].map);
  return classifier.predict_batch(maps);
}

double coverage_of(const std::vector<SelectivePrediction>& preds) {
  if (preds.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& p : preds) n += p.selected;
  return static_cast<double>(n) / static_cast<double>(preds.size());
}

double selective_accuracy(const std::vector<SelectivePrediction>& preds,
                          const std::vector<int>& labels) {
  WM_CHECK(preds.size() == labels.size(), "prediction/label size mismatch");
  std::size_t selected = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (!preds[i].selected) continue;
    ++selected;
    correct += (preds[i].label == labels[i]);
  }
  return selected == 0 ? 1.0
                       : static_cast<double>(correct) /
                             static_cast<double>(selected);
}

double full_accuracy(const std::vector<SelectivePrediction>& preds,
                     const std::vector<int>& labels) {
  WM_CHECK(preds.size() == labels.size(), "prediction/label size mismatch");
  WM_CHECK(!preds.empty(), "empty prediction set");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    correct += (preds[i].label == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace wm

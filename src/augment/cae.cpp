#include "augment/cae.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/layers/activations.hpp"
#include "nn/layers/conv2d.hpp"
#include "nn/layers/conv_transpose2d.hpp"
#include "nn/layers/maxpool2d.hpp"
#include "nn/layers/upsample2d.hpp"
#include "nn/loss/mse.hpp"

namespace wm::augment {

ConvAutoencoder::ConvAutoencoder(const CaeOptions& opts, Rng& rng) : opts_(opts) {
  WM_CHECK(!opts.encoder_filters.empty(), "CAE needs at least one stage");
  WM_CHECK(opts.kernel % 2 == 1, "CAE kernel must be odd for 'same' padding");
  const int stages = static_cast<int>(opts.encoder_filters.size());
  int spatial = opts.map_size;
  for (int s = 0; s < stages; ++s) {
    WM_CHECK(spatial % 2 == 0, "map size ", opts.map_size,
             " not divisible by 2^stages");
    spatial /= 2;
  }
  WM_CHECK(spatial >= 2, "too many stages for map size ", opts.map_size);

  const std::int64_t pad = opts.kernel / 2;
  // Encoder: Conv -> ReLU -> Pool per stage.
  int in_ch = 1;
  for (int s = 0; s < stages; ++s) {
    const int out_ch = opts.encoder_filters[static_cast<std::size_t>(s)];
    WM_CHECK(out_ch > 0, "bad encoder filter count");
    encoder_.add(nn::make_layer<nn::Conv2d>(
        nn::Conv2dOptions{.in_channels = in_ch, .out_channels = out_ch,
                          .kernel = opts.kernel, .stride = 1, .pad = pad},
        rng));
    encoder_.add(nn::make_layer<nn::ReLU>());
    encoder_.add(nn::make_layer<nn::MaxPool2d>(2));
    in_ch = out_ch;
  }
  // Decoder: Upsample -> Deconv -> activation per stage, mirrored filters.
  for (int s = stages - 1; s >= 0; --s) {
    const int out_ch =
        s > 0 ? opts.encoder_filters[static_cast<std::size_t>(s - 1)] : 1;
    decoder_.add(nn::make_layer<nn::Upsample2d>(2));
    decoder_.add(nn::make_layer<nn::ConvTranspose2d>(
        nn::ConvTranspose2dOptions{.in_channels = in_ch, .out_channels = out_ch,
                                   .kernel = opts.kernel, .stride = 1,
                                   .pad = pad},
        rng));
    if (s > 0) {
      decoder_.add(nn::make_layer<nn::ReLU>());
    } else {
      decoder_.add(nn::make_layer<nn::Sigmoid>());
    }
    in_ch = out_ch;
  }
}

Tensor ConvAutoencoder::encode(const Tensor& images, bool training) {
  WM_CHECK_SHAPE(images.rank() == 4 && images.dim(1) == 1 &&
                     images.dim(2) == opts_.map_size &&
                     images.dim(3) == opts_.map_size,
                 "CAE expects (N,1,", opts_.map_size, ",", opts_.map_size,
                 "), got ", images.shape().to_string());
  return encoder_.forward(images, training);
}

Tensor ConvAutoencoder::decode(const Tensor& latent, bool training) {
  return decoder_.forward(latent, training);
}

Tensor ConvAutoencoder::reconstruct(const Tensor& images, bool training) {
  return decode(encode(images, training), training);
}

float ConvAutoencoder::training_step(const Tensor& images) {
  const Tensor recon = reconstruct(images, /*training=*/true);
  const auto loss = nn::MseLoss::compute(recon, images);
  encoder_.backward(decoder_.backward(loss.grad));
  return loss.value;
}

std::vector<nn::Parameter*> ConvAutoencoder::parameters() {
  return nn::collect_parameters({&encoder_, &decoder_});
}

Shape ConvAutoencoder::latent_shape() const {
  const int stages = static_cast<int>(opts_.encoder_filters.size());
  const std::int64_t spatial = opts_.map_size >> stages;
  return Shape{opts_.encoder_filters.back(), spatial, spatial};
}

}  // namespace wm::augment

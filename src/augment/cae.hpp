// Convolutional auto-encoder (paper Fig 3).
//
// Encoder: stacked [Conv 5x5 -> ReLU -> MaxPool 2x2] blocks; the bottleneck
// activation is the latent representation z. Decoder mirrors the encoder
// with [Upsample 2x -> Deconv 5x5 -> ReLU] blocks and a final sigmoid so
// reconstructions live in [0, 1] like the normalised wafer pixels.
#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace wm {
class Rng;
}

namespace wm::augment {

struct CaeOptions {
  int map_size = 32;
  /// Output channels of each encoder stage (decoder mirrors this).
  std::vector<int> encoder_filters = {16, 8, 8};
  int kernel = 5;
};

class ConvAutoencoder {
 public:
  ConvAutoencoder(const CaeOptions& opts, Rng& rng);

  /// (N,1,S,S) images -> (N, C_z, S_z, S_z) latent activations.
  Tensor encode(const Tensor& images, bool training = false);

  /// Latent activations -> (N,1,S,S) reconstructions in [0,1].
  Tensor decode(const Tensor& latent, bool training = false);

  /// decode(encode(x)).
  Tensor reconstruct(const Tensor& images, bool training = false);

  /// One training step on a batch: forward, MSE against the input,
  /// backward through both halves. Returns the batch loss. The caller owns
  /// the optimizer (built over parameters()).
  float training_step(const Tensor& images);

  std::vector<nn::Parameter*> parameters();

  /// Shape of one latent sample (C_z, S_z, S_z).
  Shape latent_shape() const;

  const CaeOptions& options() const { return opts_; }

 private:
  CaeOptions opts_;
  nn::Sequential encoder_;
  nn::Sequential decoder_;
};

}  // namespace wm::augment

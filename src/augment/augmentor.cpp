#include "augment/augmentor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "wafermap/transforms.hpp"

namespace wm::augment {

namespace {

/// Standard deviation of all latent activations (noise scale reference).
float latent_std(const Tensor& z) {
  const std::int64_t n = z.numel();
  if (n == 0) return 0.0f;
  double mean = 0.0;
  for (std::int64_t i = 0; i < n; ++i) mean += z[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::int64_t i = 0; i < n; ++i) var += (z[i] - mean) * (z[i] - mean);
  return static_cast<float>(std::sqrt(var / static_cast<double>(n)));
}

}  // namespace

Augmentor::Augmentor(const AugmentOptions& opts) : opts_(opts) {
  WM_CHECK(opts.target_per_class > 0, "target_per_class must be positive");
  WM_CHECK(opts.sigma0 >= 0.0, "sigma0 must be non-negative");
  WM_CHECK(opts.sp_flips >= 0, "sp_flips must be non-negative");
  WM_CHECK(opts.synthetic_weight > 0.0f && opts.synthetic_weight <= 1.0f,
           "synthetic weight must be in (0,1]");
  WM_CHECK(opts.max_rotations_per_sample > 0, "bad rotation cap");
}

Dataset Augmentor::augment_class(const Dataset& class_samples, Rng& rng) const {
  WM_CHECK(!class_samples.empty(), "augment_class on empty class");
  const DefectType label = class_samples[0].label;
  for (std::size_t i = 0; i < class_samples.size(); ++i) {
    WM_CHECK(class_samples[i].label == label,
             "augment_class expects a single-class dataset");
  }
  const int n_cl = static_cast<int>(class_samples.size());
  // Algorithm 1 line 1: n_r = ceil(T / n_cl) - 1.
  int n_r = (opts_.target_per_class + n_cl - 1) / n_cl - 1;
  n_r = std::min(n_r, opts_.max_rotations_per_sample);
  Dataset omega;
  if (n_r <= 0) return omega;  // class already meets the target

  // Line 1: train the class CAE.
  CaeOptions cae_opts = opts_.cae;
  cae_opts.map_size = class_samples.map_size();
  ConvAutoencoder cae(cae_opts, rng);
  train_cae(cae, class_samples, opts_.cae_training, rng);

  omega.reserve(static_cast<std::size_t>(n_cl) * static_cast<std::size_t>(n_r));
  for (int s = 0; s < n_cl; ++s) {
    // Line 3: latent representation of the original image.
    const WaferMap& original = class_samples[static_cast<std::size_t>(s)].map;
    const int original_fails = original.fail_count();
    const Tensor img = original.to_tensor().reshape(
        Shape{1, 1, cae_opts.map_size, cae_opts.map_size});
    const Tensor z = cae.encode(img);
    const float noise_std =
        static_cast<float>(opts_.sigma0) * std::max(latent_std(z), 1e-3f);
    for (int i = 0; i < n_r; ++i) {
      // Line 5: perturb the latent code.
      Tensor zp = z;
      for (std::int64_t k = 0; k < zp.numel(); ++k) {
        zp[k] += static_cast<float>(rng.normal(0.0, noise_std));
      }
      // Lines 6-7: decode and quantise to the 3 pixel levels. The threshold
      // is density-matched to the source wafer so imperfect decoders keep
      // the class' failure mass instead of collapsing to an all-pass map.
      const Tensor decoded = cae.decode(zp);
      WaferMap synth = quantize_matching_density(
          decoded.reshape(Shape{1, cae_opts.map_size, cae_opts.map_size}),
          original_fails);
      // Line 8: rotate by i * 360 / n_r.
      const double angle = 360.0 * static_cast<double>(i) / n_r;
      synth = rotate(synth, angle);
      // Line 9: salt-and-pepper die flips.
      synth = salt_and_pepper(synth, opts_.sp_flips, rng);
      omega.add(Sample{.map = std::move(synth),
                       .label = label,
                       .weight = opts_.synthetic_weight,
                       .synthetic = true});
    }
  }
  return omega;
}

Dataset Augmentor::augment_dataset(const Dataset& training, Rng& rng) const {
  Dataset merged = training;
  // Collect the classes that actually need augmentation first so the
  // parallel path can fork one child rng per class in a fixed order.
  std::vector<Dataset> classes;
  for (DefectType type : all_defect_types()) {
    if (type == DefectType::kNone) continue;  // paper augments defects only
    Dataset cls = training.filter(type);
    if (cls.empty()) continue;
    if (static_cast<int>(cls.size()) >= opts_.target_per_class) continue;
    log_info("augmenting ", to_string(type), ": ", cls.size(), " -> target ",
             opts_.target_per_class);
    classes.push_back(std::move(cls));
  }
  if (classes.empty()) return merged;

  if (ThreadPool::global().worker_count() == 0) {
    // Serial path draws from the caller's rng directly — the exact
    // pre-threading sequence, so WM_THREADS=1 reproduces historical runs.
    for (const Dataset& cls : classes) merged.append(augment_class(cls, rng));
    return merged;
  }

  // Parallel path: each class trains its own CAE and synthesises from its
  // own forked rng, then results are appended in class order. The output is
  // deterministic for a given seed (fork order is fixed) but draws a
  // different stream than the serial path.
  std::vector<Rng> rngs;
  rngs.reserve(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) rngs.push_back(rng.fork());
  std::vector<Dataset> results(classes.size());
  ThreadPool::global().parallel_for(0, classes.size(), [&](std::size_t i) {
    results[i] = augment_class(classes[i], rngs[i]);
  });
  for (Dataset& r : results) merged.append(std::move(r));
  return merged;
}

}  // namespace wm::augment

#include "augment/cae_trainer.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "nn/optim/optimizer.hpp"

namespace wm::augment {

CaeTrainingLog train_cae(ConvAutoencoder& cae, const Dataset& data,
                         const CaeTrainerOptions& opts, Rng& rng) {
  WM_CHECK(!data.empty(), "cannot train CAE on empty dataset");
  WM_CHECK(opts.epochs > 0 && opts.batch_size > 0 && opts.learning_rate > 0,
           "bad CAE trainer options");
  nn::Adam optimizer(cae.parameters(), {.lr = opts.learning_rate});

  CaeTrainingLog log;
  log.epoch_losses.reserve(static_cast<std::size_t>(opts.epochs));
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    const auto batches = Dataset::batch_indices(
        data.size(), static_cast<std::size_t>(opts.batch_size), rng);
    double epoch_loss = 0.0;
    for (const auto& indices : batches) {
      const Batch batch = data.make_batch(indices);
      optimizer.zero_grad();
      const float loss = cae.training_step(batch.images);
      optimizer.step();
      epoch_loss += static_cast<double>(loss) * static_cast<double>(indices.size());
    }
    epoch_loss /= static_cast<double>(data.size());
    log.epoch_losses.push_back(static_cast<float>(epoch_loss));
    log_debug("CAE epoch ", epoch + 1, "/", opts.epochs, " mse=", epoch_loss);
  }
  return log;
}

}  // namespace wm::augment

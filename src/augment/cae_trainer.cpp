#include "augment/cae_trainer.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "nn/optim/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/run_log.hpp"
#include "obs/trace.hpp"

namespace wm::augment {

CaeTrainingLog train_cae(ConvAutoencoder& cae, const Dataset& data,
                         const CaeTrainerOptions& opts, Rng& rng) {
  WM_CHECK(!data.empty(), "cannot train CAE on empty dataset");
  WM_CHECK(opts.epochs > 0 && opts.batch_size > 0 && opts.learning_rate > 0,
           "bad CAE trainer options");
  nn::Adam optimizer(cae.parameters(), {.lr = opts.learning_rate});

  obs::RunLog& run_log =
      opts.run_log != nullptr ? *opts.run_log : obs::run_log_global();
  obs::Registry& registry = obs::Registry::global();
  obs::Counter& epochs_total = registry.counter(
      "wm_augment_cae_epochs_total", "CAE trainer epochs completed");
  obs::Gauge& mse_gauge = registry.gauge(
      "wm_augment_cae_mse", "last CAE epoch mean reconstruction MSE");
  run_log.write("cae_train_begin", {{"epochs", opts.epochs},
                                    {"batch_size", opts.batch_size},
                                    {"train_size", data.size()}});

  CaeTrainingLog log;
  log.epoch_losses.reserve(static_cast<std::size_t>(opts.epochs));
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    WM_TRACE_SCOPE("cae.epoch");
    const auto batches = Dataset::batch_indices(
        data.size(), static_cast<std::size_t>(opts.batch_size), rng);
    double epoch_loss = 0.0;
    for (const auto& indices : batches) {
      const Batch batch = data.make_batch(indices);
      optimizer.zero_grad();
      const float loss = cae.training_step(batch.images);
      optimizer.step();
      epoch_loss += static_cast<double>(loss) * static_cast<double>(indices.size());
    }
    epoch_loss /= static_cast<double>(data.size());
    log.epoch_losses.push_back(static_cast<float>(epoch_loss));
    log_debug("CAE epoch ", epoch + 1, "/", opts.epochs, " mse=", epoch_loss);
    epochs_total.inc();
    mse_gauge.set(epoch_loss);
    run_log.write("cae_epoch", {{"epoch", epoch + 1}, {"mse", epoch_loss}});
  }
  run_log.write("cae_train_end",
                {{"epochs_run", static_cast<int>(log.epoch_losses.size())},
                 {"final_mse", log.final_loss()}});
  return log;
}

}  // namespace wm::augment

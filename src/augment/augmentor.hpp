// Data augmentation for under-represented classes (paper Algorithm 1 and
// Section III-B).
//
// For each minority class: train a CAE on the class' samples, then for each
// original sample produce n_r = ceil(T / n_cl) - 1 synthetic wafers by
//   z' = encode(img) + N(0, sigma0^2)         (latent perturbation)
//   img' = quantize(decode(z'))               (3-level mapping)
//   img' = rotate(img', i * 360 / n_r)        (rotation sweep)
//   img' = salt_and_pepper(img')              (die-label flips)
// Synthetic samples carry weight w < 1 so original-sample mistakes cost 1/w
// times more during training.
#pragma once

#include "augment/cae.hpp"
#include "augment/cae_trainer.hpp"
#include "wafermap/dataset.hpp"

namespace wm::augment {

struct AugmentOptions {
  /// Target minimum sample count per class (paper: T = 8000).
  int target_per_class = 8000;
  /// Latent Gaussian noise as a fraction of the latent activations' std.
  double sigma0 = 0.2;
  /// Number of salt-and-pepper die flips per synthetic wafer.
  int sp_flips = 4;
  /// Loss weight of synthetic samples (paper: w < 1).
  float synthetic_weight = 0.5f;
  /// Safety cap on rotations per original sample (bounds run time when a
  /// class is extremely rare relative to T).
  int max_rotations_per_sample = 256;

  CaeOptions cae;
  CaeTrainerOptions cae_training;
};

class Augmentor {
 public:
  explicit Augmentor(const AugmentOptions& opts);

  /// Algorithm 1 for one class: trains a fresh CAE on `class_samples`
  /// (must all share one label) and returns the synthetic set Omega.
  Dataset augment_class(const Dataset& class_samples, Rng& rng) const;

  /// Applies augment_class to every *defect* class (None is left alone, as
  /// in the paper) whose count is below target_per_class and returns the
  /// merged training set (originals + synthetics).
  Dataset augment_dataset(const Dataset& training, Rng& rng) const;

  const AugmentOptions& options() const { return opts_; }

 private:
  AugmentOptions opts_;
};

}  // namespace wm::augment

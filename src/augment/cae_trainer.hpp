// Trains one convolutional auto-encoder on the samples of a single class.
#pragma once

#include <vector>

#include "augment/cae.hpp"
#include "wafermap/dataset.hpp"

namespace wm::obs {
class RunLog;
}

namespace wm::augment {

struct CaeTrainerOptions {
  int epochs = 30;
  int batch_size = 32;
  double learning_rate = 2e-3;
  /// JSONL sink for per-epoch MSE and phase boundaries; defaults to
  /// obs::run_log_global(). wm_augment_cae_* metrics are always published
  /// to obs::Registry::global().
  obs::RunLog* run_log = nullptr;
};

struct CaeTrainingLog {
  std::vector<float> epoch_losses;  // mean MSE per epoch

  float final_loss() const {
    return epoch_losses.empty() ? 0.0f : epoch_losses.back();
  }
};

/// Trains `cae` in place with Adam on all samples of `data` (the caller is
/// expected to pass a single-class dataset, per Algorithm 1 line 1).
CaeTrainingLog train_cae(ConvAutoencoder& cae, const Dataset& data,
                         const CaeTrainerOptions& opts, Rng& rng);

}  // namespace wm::augment

#include "selective/model_file.hpp"

#include <cstdint>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model_io.hpp"
#include "tensor/serialize.hpp"

namespace wm::selective {

namespace {

constexpr char kMagicFloat[4] = {'W', 'S', 'N', '1'};
constexpr char kMagicQuant[4] = {'W', 'S', 'N', '2'};

void write_i32(std::ostream& out, std::int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int32_t read_i32(std::istream& in) {
  std::int32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("truncated model header");
  return v;
}

void read_bytes(std::istream& in, void* dst, std::size_t n,
                const std::string& path) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!in) throw IoError("truncated model file: " + path);
}

/// Reads and validates the 4-byte magic; returns the version byte.
/// Unknown versions fail here, once, for every loader.
char read_version(std::istream& in, const std::string& path) {
  char magic[4];
  in.read(magic, 4);
  if (!in || magic[0] != 'W' || magic[1] != 'S' || magic[2] != 'N') {
    throw IoError("bad model magic in " + path);
  }
  if (magic[3] != '1' && magic[3] != '2') {
    throw IoError("unsupported model file version 'WSN" +
                  std::string(1, magic[3]) + "' in " + path +
                  "; this build reads WSN1 (fp32) and WSN2 (quantized)");
  }
  return magic[3];
}

void write_options(std::ostream& out, const SelectiveNetOptions& o) {
  write_i32(out, o.map_size);
  write_i32(out, o.num_classes);
  write_i32(out, o.conv1_filters);
  write_i32(out, o.conv2_filters);
  write_i32(out, o.conv3_filters);
  write_i32(out, o.fc_units);
  write_i32(out, o.use_batchnorm ? 1 : 0);
}

SelectiveNetOptions read_options(std::istream& in) {
  SelectiveNetOptions o;
  o.map_size = read_i32(in);
  o.num_classes = read_i32(in);
  o.conv1_filters = read_i32(in);
  o.conv2_filters = read_i32(in);
  o.conv3_filters = read_i32(in);
  o.fc_units = read_i32(in);
  o.use_batchnorm = read_i32(in) != 0;
  return o;
}

/// One quantized layer record: rows, cols, relu flag, raw int8 weights,
/// raw float scales, then the float bias tensor. Row sums are derived data
/// and recomputed on load.
void write_quant_layer(std::ostream& out, const nn::quant::QuantizedWeights& qw,
                       const Tensor& bias, bool relu) {
  write_i32(out, static_cast<std::int32_t>(qw.rows));
  write_i32(out, static_cast<std::int32_t>(qw.cols));
  write_i32(out, relu ? 1 : 0);
  out.write(reinterpret_cast<const char*>(qw.q.data()),
            static_cast<std::streamsize>(qw.q.size()));
  out.write(reinterpret_cast<const char*>(qw.scales.data()),
            static_cast<std::streamsize>(qw.scales.size() * sizeof(float)));
  write_tensor(out, bias);
}

struct QuantLayerRecord {
  nn::quant::QuantizedWeights qw;
  Tensor bias{Shape{1}};
  bool relu = false;
};

QuantLayerRecord read_quant_layer(std::istream& in, const std::string& path) {
  QuantLayerRecord rec;
  rec.qw.rows = read_i32(in);
  rec.qw.cols = read_i32(in);
  rec.relu = read_i32(in) != 0;
  if (rec.qw.rows <= 0 || rec.qw.cols <= 0) {
    throw IoError("corrupt quantized layer header in " + path);
  }
  rec.qw.q.resize(static_cast<std::size_t>(rec.qw.rows * rec.qw.cols));
  rec.qw.scales.resize(static_cast<std::size_t>(rec.qw.rows));
  read_bytes(in, rec.qw.q.data(), rec.qw.q.size(), path);
  read_bytes(in, rec.qw.scales.data(), rec.qw.scales.size() * sizeof(float),
             path);
  rec.bias = read_tensor(in);
  return rec;
}

}  // namespace

void save_model(const std::string& path, SelectiveNet& net) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open model file for writing: " + path);
  out.write(kMagicFloat, 4);
  write_options(out, net.options());
  nn::save_parameters(out, net.parameters());
  const auto buffers = net.buffers();
  write_i32(out, static_cast<std::int32_t>(buffers.size()));
  for (const Tensor* b : buffers) write_tensor(out, *b);
  if (!out) throw IoError("model write failed: " + path);
}

std::unique_ptr<SelectiveNet> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open model file for reading: " + path);
  if (read_version(in, path) != '1') {
    throw IoError(path + " is a quantized model (WSN2); load it with "
                  "load_quantized_model or load_model_auto");
  }
  const SelectiveNetOptions o = read_options(in);
  // Weight init is immediately overwritten; any seed works.
  Rng rng(0);
  auto net = std::make_unique<SelectiveNet>(o, rng);
  nn::load_parameters(in, net->parameters());
  const std::int32_t buffer_count = read_i32(in);
  const auto buffers = net->buffers();
  if (buffer_count != static_cast<std::int32_t>(buffers.size())) {
    throw IoError("model buffer count mismatch in " + path);
  }
  for (Tensor* b : buffers) {
    Tensor t = read_tensor(in);
    if (t.shape() != b->shape()) throw IoError("buffer shape mismatch in " + path);
    *b = std::move(t);
  }
  return net;
}

void save_quantized_model(const std::string& path,
                          const QuantizedSelectiveNet& net) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open model file for writing: " + path);
  out.write(kMagicQuant, 4);
  write_options(out, net.options());
  for (const nn::quant::QuantConv2d* c :
       {&net.conv1(), &net.conv2(), &net.conv3()}) {
    write_quant_layer(out, c->weights(), c->bias(), c->fused_relu());
  }
  for (const nn::quant::QuantLinear* l :
       {&net.fc(), &net.head_f(), &net.head_g()}) {
    write_quant_layer(out, l->weights(), l->bias(), l->fused_relu());
  }
  if (!out) throw IoError("model write failed: " + path);
}

std::unique_ptr<QuantizedSelectiveNet> load_quantized_model(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open model file for reading: " + path);
  if (read_version(in, path) != '2') {
    throw IoError(path + " is an fp32 model (WSN1); load it with load_model, "
                  "or convert it with `wm_tool quantize`");
  }
  const SelectiveNetOptions o = read_options(in);
  const auto conv_opts = [&](std::int64_t in_ch, std::int64_t out_ch,
                             std::int64_t kernel, std::int64_t pad) {
    return nn::Conv2dOptions{.in_channels = in_ch, .out_channels = out_ch,
                             .kernel = kernel, .stride = 1, .pad = pad};
  };
  const auto read_conv = [&](const nn::Conv2dOptions& copts) {
    QuantLayerRecord rec = read_quant_layer(in, path);
    return nn::quant::QuantConv2d(copts, std::move(rec.qw),
                                  std::move(rec.bias), rec.relu);
  };
  const auto read_linear = [&]() {
    QuantLayerRecord rec = read_quant_layer(in, path);
    return nn::quant::QuantLinear(std::move(rec.qw), std::move(rec.bias),
                                  rec.relu);
  };
  nn::quant::QuantConv2d conv1 = read_conv(conv_opts(1, o.conv1_filters, 5, 2));
  nn::quant::QuantConv2d conv2 =
      read_conv(conv_opts(o.conv1_filters, o.conv2_filters, 3, 1));
  nn::quant::QuantConv2d conv3 =
      read_conv(conv_opts(o.conv2_filters, o.conv3_filters, 3, 1));
  nn::quant::QuantLinear fc = read_linear();
  nn::quant::QuantLinear head_f = read_linear();
  nn::quant::QuantLinear head_g = read_linear();
  // The QuantizedSelectiveNet constructor cross-checks every layer shape
  // against the options, so a corrupt-but-well-framed file still fails.
  return std::make_unique<QuantizedSelectiveNet>(
      o, std::move(conv1), std::move(conv2), std::move(conv3), std::move(fc),
      std::move(head_f), std::move(head_g));
}

ModelFileKind probe_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open model file for reading: " + path);
  return read_version(in, path) == '1' ? ModelFileKind::kFloat
                                       : ModelFileKind::kQuantized;
}

LoadedModel load_model_auto(const std::string& path, float threshold,
                            int eval_batch) {
  LoadedModel m;
  if (probe_model_file(path) == ModelFileKind::kFloat) {
    m.fp32 = load_model(path);
    m.map_size = m.fp32->options().map_size;
    m.predictor = std::make_unique<SelectivePredictor>(*m.fp32, threshold,
                                                       eval_batch);
  } else {
    m.quantized = load_quantized_model(path);
    m.map_size = m.quantized->options().map_size;
    m.predictor = std::make_unique<QuantizedSelectivePredictor>(
        *m.quantized, threshold, eval_batch);
  }
  return m;
}

}  // namespace wm::selective

#include "selective/model_file.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/model_io.hpp"
#include "tensor/serialize.hpp"

namespace wm::selective {

namespace {
constexpr char kMagic[4] = {'W', 'S', 'N', '1'};

void write_i32(std::ostream& out, std::int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int32_t read_i32(std::istream& in) {
  std::int32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw IoError("truncated model header");
  return v;
}
}  // namespace

void save_model(const std::string& path, SelectiveNet& net) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open model file for writing: " + path);
  out.write(kMagic, 4);
  const SelectiveNetOptions& o = net.options();
  write_i32(out, o.map_size);
  write_i32(out, o.num_classes);
  write_i32(out, o.conv1_filters);
  write_i32(out, o.conv2_filters);
  write_i32(out, o.conv3_filters);
  write_i32(out, o.fc_units);
  write_i32(out, o.use_batchnorm ? 1 : 0);
  nn::save_parameters(out, net.parameters());
  const auto buffers = net.buffers();
  write_i32(out, static_cast<std::int32_t>(buffers.size()));
  for (const Tensor* b : buffers) write_tensor(out, *b);
  if (!out) throw IoError("model write failed: " + path);
}

std::unique_ptr<SelectiveNet> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open model file for reading: " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw IoError("bad model magic in " + path);
  }
  SelectiveNetOptions o;
  o.map_size = read_i32(in);
  o.num_classes = read_i32(in);
  o.conv1_filters = read_i32(in);
  o.conv2_filters = read_i32(in);
  o.conv3_filters = read_i32(in);
  o.fc_units = read_i32(in);
  o.use_batchnorm = read_i32(in) != 0;
  // Weight init is immediately overwritten; any seed works.
  Rng rng(0);
  auto net = std::make_unique<SelectiveNet>(o, rng);
  nn::load_parameters(in, net->parameters());
  const std::int32_t buffer_count = read_i32(in);
  const auto buffers = net->buffers();
  if (buffer_count != static_cast<std::int32_t>(buffers.size())) {
    throw IoError("model buffer count mismatch in " + path);
  }
  for (Tensor* b : buffers) {
    Tensor t = read_tensor(in);
    if (t.shape() != b->shape()) throw IoError("buffer shape mismatch in " + path);
    *b = std::move(t);
  }
  return net;
}

}  // namespace wm::selective

#include "selective/predictor.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "tensor/tensor_ops.hpp"

namespace wm::selective {

SelectivePredictor::SelectivePredictor(SelectiveNet& net, float threshold,
                                       int eval_batch)
    : net_(net), threshold_(threshold), eval_batch_(eval_batch) {
  WM_CHECK(threshold >= 0.0f && threshold <= 1.0f, "threshold out of [0,1]");
  WM_CHECK(eval_batch > 0, "bad eval batch size");
}

void SelectivePredictor::set_threshold(float threshold) {
  WM_CHECK(threshold >= 0.0f && threshold <= 1.0f, "threshold out of [0,1]");
  threshold_ = threshold;
}

std::vector<SelectivePrediction> SelectivePredictor::predict(
    const Batch& batch) const {
  const SelectiveOutput out = net_.forward(batch.images, /*training=*/false);
  const Tensor probs = softmax_rows(out.logits);
  const auto arg = argmax_rows(out.logits);
  std::vector<SelectivePrediction> preds(arg.size());
  const std::int64_t nc = out.logits.dim(1);
  for (std::size_t i = 0; i < arg.size(); ++i) {
    const float g = out.g[static_cast<std::int64_t>(i)];
    preds[i].label = static_cast<int>(arg[i]);
    preds[i].g = g;
    preds[i].selected = g >= threshold_;
    preds[i].confidence =
        probs[static_cast<std::int64_t>(i) * nc + arg[i]];
  }
  return preds;
}

std::vector<SelectivePrediction> SelectivePredictor::predict(
    const Dataset& data) const {
  // Eval batches are independent (eval-mode forwards mutate no layer state
  // and per-sample outputs don't depend on batch grouping), so fan the
  // batches out across the pool; each one writes a disjoint slice of `all`.
  // Batch composition is identical to the serial loop, so the results are
  // bit-identical for any thread count.
  std::vector<SelectivePrediction> all(data.size());
  const std::size_t bs = static_cast<std::size_t>(eval_batch_);
  const std::size_t n_batches = data.size() == 0 ? 0 : (data.size() + bs - 1) / bs;
  ThreadPool::global().parallel_for(0, n_batches, [&](std::size_t b) {
    const std::size_t start = b * bs;
    const std::size_t end = std::min(data.size(), start + bs);
    std::vector<std::size_t> indices(end - start);
    std::iota(indices.begin(), indices.end(), start);
    const auto chunk = predict(data.make_batch(indices));
    std::copy(chunk.begin(), chunk.end(), all.begin() +
              static_cast<std::ptrdiff_t>(start));
  });
  return all;
}

SelectivePrediction SelectivePredictor::predict_one(const WaferMap& map) const {
  Batch batch;
  const int s = map.size();
  batch.images = map.to_tensor().reshape(Shape{1, 1, s, s});
  batch.labels = {0};
  batch.weights = {1.0f};
  return predict(batch).front();
}

double coverage_of(const std::vector<SelectivePrediction>& preds) {
  if (preds.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& p : preds) n += p.selected;
  return static_cast<double>(n) / static_cast<double>(preds.size());
}

double selective_accuracy(const std::vector<SelectivePrediction>& preds,
                          const std::vector<int>& labels) {
  WM_CHECK(preds.size() == labels.size(), "prediction/label size mismatch");
  std::size_t selected = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (!preds[i].selected) continue;
    ++selected;
    correct += (preds[i].label == labels[i]);
  }
  return selected == 0 ? 1.0
                       : static_cast<double>(correct) /
                             static_cast<double>(selected);
}

double full_accuracy(const std::vector<SelectivePrediction>& preds,
                     const std::vector<int>& labels) {
  WM_CHECK(preds.size() == labels.size(), "prediction/label size mismatch");
  WM_CHECK(!preds.empty(), "empty prediction set");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    correct += (preds[i].label == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace wm::selective

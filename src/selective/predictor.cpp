#include "selective/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "tensor/tensor_ops.hpp"

namespace wm::selective {

SelectivePredictor::SelectivePredictor(const SelectiveNet& net, float threshold,
                                       int eval_batch)
    : net_(net), threshold_(threshold), eval_batch_(eval_batch) {
  WM_CHECK(!std::isnan(threshold) && threshold >= 0.0f && threshold <= 1.0f,
           "threshold out of [0,1]");
  WM_CHECK(eval_batch > 0, "bad eval batch size");
}

void SelectivePredictor::set_threshold(float threshold) {
  WM_CHECK(!std::isnan(threshold) && threshold >= 0.0f && threshold <= 1.0f,
           "threshold out of [0,1]");
  threshold_ = threshold;
}

std::vector<SelectivePrediction> SelectivePredictor::predict_batch(
    std::span<const WaferMap> maps) const {
  // Eval batches are independent (eval-mode forwards mutate no layer state
  // and per-sample outputs don't depend on batch grouping), so fan the
  // batches out across the pool; each one writes a disjoint slice of `all`.
  // Batch composition depends only on eval_batch_, so the results are
  // bit-identical for any thread count and any caller-side regrouping.
  const int s = net_.options().map_size;
  const std::size_t bs = static_cast<std::size_t>(eval_batch_);
  const std::size_t n_batches =
      maps.empty() ? 0 : (maps.size() + bs - 1) / bs;
  std::vector<SelectivePrediction> all(maps.size());
  ThreadPool::global().parallel_for(0, n_batches, [&](std::size_t b) {
    const std::size_t start = b * bs;
    const std::size_t end = std::min(maps.size(), start + bs);
    const std::int64_t n = static_cast<std::int64_t>(end - start);
    Tensor images(Shape{n, 1, s, s});
    const std::int64_t image_elems = static_cast<std::int64_t>(s) * s;
    for (std::int64_t k = 0; k < n; ++k) {
      const WaferMap& map = maps[start + static_cast<std::size_t>(k)];
      WM_CHECK_SHAPE(map.size() == s, "wafer size ", map.size(),
                     " does not match the net's map size ", s);
      const Tensor img = map.to_tensor();
      std::memcpy(images.data() + k * image_elems, img.data(),
                  static_cast<std::size_t>(image_elems) * sizeof(float));
    }
    const SelectiveOutput out = net_.infer(images);
    const Tensor probs = softmax_rows(out.logits);
    const auto arg = argmax_rows(out.logits);
    const std::int64_t nc = out.logits.dim(1);
    for (std::size_t i = 0; i < arg.size(); ++i) {
      SelectivePrediction& p = all[start + i];
      const float g = out.g[static_cast<std::int64_t>(i)];
      p.label = static_cast<int>(arg[i]);
      p.g = g;
      p.selected = g >= threshold_;
      p.confidence = probs[static_cast<std::int64_t>(i) * nc + arg[i]];
    }
  });
  return all;
}

}  // namespace wm::selective

#include "selective/load_classifier.hpp"

#include <utility>

#include "common/error.hpp"
#include "selective/model_file.hpp"
#include "selective/predictor.hpp"
#include "selective/quant_predictor.hpp"

namespace wm {

namespace {

/// Owning-or-borrowing wrapper over the fp32 predictor. `owned` is null for
/// the in-memory overload; the predictor always references the live net.
class Fp32Classifier final : public LoadedClassifier {
 public:
  Fp32Classifier(std::unique_ptr<selective::SelectiveNet> owned,
                 const selective::SelectiveNet& net,
                 const ClassifierLoadOptions& opts)
      : owned_(std::move(owned)),
        predictor_(net, opts.threshold, opts.eval_batch),
        map_size_(static_cast<int>(net.options().map_size)) {}

  std::vector<SelectivePrediction> predict_batch(
      std::span<const WaferMap> maps) const override {
    return predictor_.predict_batch(maps);
  }
  int num_classes() const override { return predictor_.num_classes(); }
  int map_size() const override { return map_size_; }
  bool is_quantized() const override { return false; }
  float threshold() const override { return predictor_.threshold(); }

 private:
  std::unique_ptr<selective::SelectiveNet> owned_;
  selective::SelectivePredictor predictor_;
  int map_size_;
};

class QuantClassifier final : public LoadedClassifier {
 public:
  QuantClassifier(std::unique_ptr<selective::QuantizedSelectiveNet> owned,
                  const selective::QuantizedSelectiveNet& net,
                  const ClassifierLoadOptions& opts)
      : owned_(std::move(owned)),
        predictor_(net, opts.threshold, opts.eval_batch),
        map_size_(static_cast<int>(net.options().map_size)) {}

  std::vector<SelectivePrediction> predict_batch(
      std::span<const WaferMap> maps) const override {
    return predictor_.predict_batch(maps);
  }
  int num_classes() const override { return predictor_.num_classes(); }
  int map_size() const override { return map_size_; }
  bool is_quantized() const override { return true; }
  float threshold() const override { return predictor_.threshold(); }

 private:
  std::unique_ptr<selective::QuantizedSelectiveNet> owned_;
  selective::QuantizedSelectivePredictor predictor_;
  int map_size_;
};

}  // namespace

std::unique_ptr<LoadedClassifier> load_classifier(
    const std::string& path, const ClassifierLoadOptions& opts) {
  if (selective::probe_model_file(path) == selective::ModelFileKind::kFloat) {
    auto net = selective::load_model(path);
    const selective::SelectiveNet& ref = *net;
    return std::make_unique<Fp32Classifier>(std::move(net), ref, opts);
  }
  auto net = selective::load_quantized_model(path);
  const selective::QuantizedSelectiveNet& ref = *net;
  return std::make_unique<QuantClassifier>(std::move(net), ref, opts);
}

std::unique_ptr<LoadedClassifier> load_classifier(
    const selective::SelectiveNet& net, const ClassifierLoadOptions& opts) {
  return std::make_unique<Fp32Classifier>(nullptr, net, opts);
}

std::unique_ptr<LoadedClassifier> load_classifier(
    std::unique_ptr<selective::SelectiveNet> net,
    const ClassifierLoadOptions& opts) {
  WM_CHECK(net != nullptr, "load_classifier: null net");
  const selective::SelectiveNet& ref = *net;
  return std::make_unique<Fp32Classifier>(std::move(net), ref, opts);
}

std::unique_ptr<LoadedClassifier> load_classifier(
    const selective::QuantizedSelectiveNet& net,
    const ClassifierLoadOptions& opts) {
  return std::make_unique<QuantClassifier>(nullptr, net, opts);
}

}  // namespace wm

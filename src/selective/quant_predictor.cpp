#include "selective/quant_predictor.hpp"

#include <cmath>

#include "common/error.hpp"
#include "selective/batched_inference.hpp"

namespace wm::selective {

QuantizedSelectivePredictor::QuantizedSelectivePredictor(
    const QuantizedSelectiveNet& net, float threshold, int eval_batch)
    : net_(net), threshold_(threshold), eval_batch_(eval_batch) {
  WM_CHECK(!std::isnan(threshold) && threshold >= 0.0f && threshold <= 1.0f,
           "threshold out of [0,1]");
  WM_CHECK(eval_batch > 0, "bad eval batch size");
}

void QuantizedSelectivePredictor::set_threshold(float threshold) {
  WM_CHECK(!std::isnan(threshold) && threshold >= 0.0f && threshold <= 1.0f,
           "threshold out of [0,1]");
  threshold_ = threshold;
}

std::vector<SelectivePrediction> QuantizedSelectivePredictor::predict_batch(
    std::span<const WaferMap> maps) const {
  return detail::predict_batched(
      [this](const Tensor& images) { return net_.infer(images); },
      net_.options().map_size, threshold_, eval_batch_, maps);
}

}  // namespace wm::selective

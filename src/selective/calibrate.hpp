// Threshold calibration: choose the abstention cut on g so that a desired
// fraction of a validation set is selected. This realises the paper's usage
// where the engineer dials a coverage budget (Section IV-D, resource
// allocation).
#pragma once

#include "selective/predictor.hpp"

namespace wm::selective {

/// Returns the threshold tau such that selecting {g >= tau} on `validation`
/// yields coverage closest to (and at least) `target_coverage` where
/// achievable. target_coverage in (0, 1].
float calibrate_threshold(const SelectiveNet& net, const Dataset& validation,
                          double target_coverage, int eval_batch = 256);

}  // namespace wm::selective

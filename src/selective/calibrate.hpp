// Threshold calibration: choose the abstention cut on g so that a desired
// fraction of a validation set is selected. This realises the paper's usage
// where the engineer dials a coverage budget (Section IV-D, resource
// allocation).
//
// Two entry points: calibrate_threshold() runs the net over a labeled
// dataset (offline calibration after training), refit_threshold() works on
// raw g-scores already in hand — the drift-adaptation path re-fits from the
// serving layer's sliding sample buffer without touching the model.
#pragma once

#include <span>

#include "selective/predictor.hpp"

namespace wm::selective {

/// Returns the threshold tau such that selecting {g >= tau} on `validation`
/// yields coverage closest to (and at least) `target_coverage` where
/// achievable. target_coverage in (0, 1].
float calibrate_threshold(const SelectiveNet& net, const Dataset& validation,
                          double target_coverage, int eval_batch = 256);

/// Re-fits the abstention threshold from raw selection scores so that the
/// top `target_coverage` fraction stays selected: tau is cut just below the
/// k-th highest score (k = round(c0 * N), clamped to [1, N]), so ties stay
/// selected. Edge semantics the re-fit path relies on:
///   * empty `g_scores` throws wm::Error (nothing to fit);
///   * an all-abstained window (every g below the old tau) still yields a
///     valid cut — the fit only looks at score ranks, not the old threshold;
///   * when duplicate scores make the exact target unreachable the achieved
///     coverage is the smallest reachable value >= target (never 0).
/// target_coverage in (0, 1]; result clamped into [0, 1].
float refit_threshold(std::span<const float> g_scores, double target_coverage);

/// Fraction of `g_scores` at or above `tau` — the coverage that threshold
/// would achieve on the window. 0 for an empty span.
double coverage_at(std::span<const float> g_scores, float tau);

}  // namespace wm::selective

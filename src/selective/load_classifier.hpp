// The unified classifier-loading API: one factory, wm::load_classifier,
// behind which every construction path in the repo lives.
//
//   auto clf = wm::load_classifier("model.wsn", {.threshold = 0.7f});
//   engine = serve::InferenceEngine(*clf, ...);
//
// The file overload probes the artifact version (WSN1 fp32 / WSN2 int8 via
// selective::probe_model_file) and returns the matching implementation —
// callers never dispatch on the format themselves. The in-memory overloads
// wrap an already-constructed net (no file involved) behind the same
// interface, so examples and benches that train a model in-process use the
// identical vocabulary as the tools that load one from disk.
//
// The returned LoadedClassifier IS-A wm::Classifier (drop it into the
// inference engine, the TCP server, the hot-swap wrapper, the router fleet)
// and additionally reports the artifact metadata serving paths need:
// the wafer edge the model expects, whether the int8 fast path is active,
// and the abstention threshold it was built with.
//
// Direct construction of SelectivePredictor / QuantizedSelectivePredictor
// in tools, examples and benches is deprecated in favour of this factory;
// the concrete predictors remain public for library code and tests that
// need the narrower types.
#pragma once

#include <memory>
#include <string>

#include "selective/quant_net.hpp"
#include "selective/selective_net.hpp"
#include "serve/classifier.hpp"

namespace wm {

struct ClassifierLoadOptions {
  /// Abstention cut on g (Eq. 2); 0.5 matches the trained sigmoid boundary.
  float threshold = 0.5f;
  /// Upper bound on the per-forward micro-batch inside the predictor.
  int eval_batch = 256;
};

/// A Classifier that carries its backing model (owned when loaded from a
/// file, borrowed for the in-memory overloads) plus artifact metadata.
class LoadedClassifier : public Classifier {
 public:
  /// Wafer edge length the model was trained for (resize inputs to this).
  virtual int map_size() const = 0;
  /// True when the int8 (WSN2) fast path serves the predictions.
  virtual bool is_quantized() const = 0;
  /// The abstention threshold the classifier applies to g.
  virtual float threshold() const = 0;
};

/// Loads a model file of either version (WSN1 fp32 / WSN2 quantized),
/// dispatching on the header, and returns it behind the classifier
/// interface. Throws wm::IoError on unreadable/truncated/unknown-version
/// files; the error names the problem.
std::unique_ptr<LoadedClassifier> load_classifier(
    const std::string& path, const ClassifierLoadOptions& opts = {});

/// Wraps an in-memory fp32 net (borrowed; must outlive the classifier).
std::unique_ptr<LoadedClassifier> load_classifier(
    const selective::SelectiveNet& net, const ClassifierLoadOptions& opts = {});

/// Takes ownership of an in-memory fp32 net — the classifier carries the
/// model for its whole lifetime. The drift-adaptation path builds hot-swap
/// candidates this way: a fine-tuned clone goes in, a self-contained
/// shared_ptr<const Classifier> comes out of swap_to's hands.
std::unique_ptr<LoadedClassifier> load_classifier(
    std::unique_ptr<selective::SelectiveNet> net,
    const ClassifierLoadOptions& opts = {});

/// Wraps an in-memory quantized net (borrowed; must outlive the classifier).
std::unique_ptr<LoadedClassifier> load_classifier(
    const selective::QuantizedSelectiveNet& net,
    const ClassifierLoadOptions& opts = {});

}  // namespace wm

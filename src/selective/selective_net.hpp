// The paper's selective CNN (Table I + Fig 2).
//
// Trunk (shared "main body blocks"):
//   Conv 5x5 x64 -> ReLU -> MaxPool 2x2
//   Conv 3x3 x32 -> ReLU -> MaxPool 2x2
//   Conv 3x3 x32 -> ReLU -> MaxPool 2x2
//   Flatten -> FC 256 -> ReLU
// Heads (departing after the main blocks):
//   prediction head f: FC(256 -> n_c) logits
//   selection head g:  FC(256 -> 1) -> sigmoid
#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace wm {
class Rng;
}

namespace wm::selective {

struct SelectiveNetOptions {
  int map_size = 32;
  int num_classes = 9;
  /// Table I values; exposed so tests can shrink the net.
  int conv1_filters = 64;
  int conv2_filters = 32;
  int conv3_filters = 32;
  int fc_units = 256;
  /// Adds BatchNorm after each conv. Not part of the paper's Table I; the
  /// experiment harness enables it to converge within the reduced epoch
  /// budget of this reproduction (see DESIGN.md §1).
  bool use_batchnorm = false;
};

/// Output of one forward pass.
struct SelectiveOutput {
  Tensor logits;  // (N, n_c)
  Tensor g;       // (N, 1) selection probabilities in (0, 1)
};

class SelectiveNet {
 public:
  SelectiveNet(const SelectiveNetOptions& opts, Rng& rng);

  /// Forward through trunk and both heads.
  SelectiveOutput forward(const Tensor& images, bool training);

  /// Eval-mode forward callable from const contexts. Eval forwards write no
  /// layer state (backward caches are gated on `training`, DESIGN.md §7), so
  /// this is safe to call concurrently on one net.
  SelectiveOutput infer(const Tensor& images) const;

  /// Backward given the loss gradients of both heads (from SelectiveLoss).
  /// Head gradients merge at the trunk output.
  void backward(const Tensor& grad_logits, const Tensor& grad_g);

  /// Zeroes all gradients.
  void zero_grad();

  std::vector<nn::Parameter*> parameters();

  /// Persistent non-parameter state (BatchNorm running statistics).
  std::vector<Tensor*> buffers();

  /// Deep copy: same architecture, parameter values, and buffer state
  /// (BatchNorm running statistics). The drift-adaptation path fine-tunes a
  /// clone so the incumbent keeps serving unchanged until the candidate
  /// passes canary verification.
  std::unique_ptr<SelectiveNet> clone() const;

  const SelectiveNetOptions& options() const { return opts_; }

  /// Number of learnable scalars (for reporting).
  std::int64_t parameter_count();

  void save(const std::string& path);
  void load(const std::string& path);

 private:
  SelectiveNetOptions opts_;
  nn::Sequential trunk_;
  nn::Sequential head_f_;
  nn::Sequential head_g_;
};

}  // namespace wm::selective

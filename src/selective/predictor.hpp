// Inference wrapper implementing the selective model (f, g) of Eq. 2:
// predict f(x) when g(x) >= threshold, abstain otherwise. Implements the
// wm::Classifier interface so it is interchangeable with the SVM baseline
// behind the serving layer.
#pragma once

#include <span>
#include <vector>

#include "selective/selective_net.hpp"
#include "serve/classifier.hpp"
#include "wafermap/dataset.hpp"

namespace wm::selective {

// The prediction struct and the metric helpers live in the shared classifier
// vocabulary (serve/classifier.hpp); re-exported here so selective-learning
// code can keep the wm::selective:: spelling.
using wm::coverage_of;
using wm::full_accuracy;
using wm::selective_accuracy;
using wm::SelectivePrediction;

class SelectivePredictor final : public Classifier {
 public:
  /// threshold is the abstention cut on g; 0.5 matches the sigmoid decision
  /// boundary the head was trained with. Use calibrate_threshold() to hit a
  /// specific coverage instead. Eval-mode forwards are reentrant, so one
  /// predictor (and one net) may serve concurrent predict_batch calls.
  explicit SelectivePredictor(const SelectiveNet& net, float threshold = 0.5f,
                              int eval_batch = 256);

  std::vector<SelectivePrediction> predict_batch(
      std::span<const WaferMap> maps) const override;

  int num_classes() const override { return net_.options().num_classes; }

  float threshold() const { return threshold_; }
  void set_threshold(float threshold);

 private:
  const SelectiveNet& net_;
  float threshold_;
  int eval_batch_;
};

}  // namespace wm::selective

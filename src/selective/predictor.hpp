// Inference wrapper implementing the selective model (f, g) of Eq. 2:
// predict f(x) when g(x) >= threshold, abstain otherwise.
#pragma once

#include <vector>

#include "selective/selective_net.hpp"
#include "wafermap/dataset.hpp"

namespace wm::selective {

struct SelectivePrediction {
  int label = -1;          // argmax of f (always filled, even when rejected)
  bool selected = false;   // g >= threshold
  float g = 0.0f;          // selection score
  float confidence = 0.0f; // softmax probability of the predicted class
};

class SelectivePredictor {
 public:
  /// threshold is the abstention cut on g; 0.5 matches the sigmoid decision
  /// boundary the head was trained with. Use calibrate_threshold() to hit a
  /// specific coverage instead.
  explicit SelectivePredictor(SelectiveNet& net, float threshold = 0.5f,
                              int eval_batch = 256);

  SelectivePrediction predict_one(const WaferMap& map) const;

  std::vector<SelectivePrediction> predict(const Dataset& data) const;
  std::vector<SelectivePrediction> predict(const Batch& batch) const;

  float threshold() const { return threshold_; }
  void set_threshold(float threshold);

 private:
  SelectiveNet& net_;
  float threshold_;
  int eval_batch_;
};

/// Achieved coverage of a prediction set.
double coverage_of(const std::vector<SelectivePrediction>& preds);

/// Accuracy over the *selected* samples only (the paper's selective
/// accuracy). Returns 1.0 when nothing is selected (zero risk by Eq. 7's
/// convention of an empty selection).
double selective_accuracy(const std::vector<SelectivePrediction>& preds,
                          const std::vector<int>& labels);

/// Accuracy over all samples, ignoring the reject option.
double full_accuracy(const std::vector<SelectivePrediction>& preds,
                     const std::vector<int>& labels);

}  // namespace wm::selective

// Shared predict_batch driver for the selective predictors (fp32 and
// quantized). Chops the request into fixed-size eval batches, fans the
// batches across the global pool and maps each (logits, g) pair to
// SelectivePredictions.
//
// Correctness contract inherited by every caller: eval batches must be
// independent (the infer callable mutates no state and per-sample outputs
// must not depend on batch grouping). Batch composition depends only on
// eval_batch, so results are bit-identical for any thread count and any
// caller-side regrouping.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "selective/selective_net.hpp"
#include "serve/classifier.hpp"
#include "tensor/tensor_ops.hpp"
#include "wafermap/dataset.hpp"

namespace wm::selective::detail {

/// InferFn: (const Tensor& images) -> SelectiveOutput, const and reentrant.
template <typename InferFn>
std::vector<SelectivePrediction> predict_batched(const InferFn& infer,
                                                 int map_size, float threshold,
                                                 int eval_batch,
                                                 std::span<const WaferMap> maps) {
  const int s = map_size;
  const std::size_t bs = static_cast<std::size_t>(eval_batch);
  const std::size_t n_batches =
      maps.empty() ? 0 : (maps.size() + bs - 1) / bs;
  std::vector<SelectivePrediction> all(maps.size());
  ThreadPool::global().parallel_for(0, n_batches, [&](std::size_t b) {
    const std::size_t start = b * bs;
    const std::size_t end = std::min(maps.size(), start + bs);
    const std::int64_t n = static_cast<std::int64_t>(end - start);
    Tensor images(Shape{n, 1, s, s});
    const std::int64_t image_elems = static_cast<std::int64_t>(s) * s;
    for (std::int64_t k = 0; k < n; ++k) {
      const WaferMap& map = maps[start + static_cast<std::size_t>(k)];
      WM_CHECK_SHAPE(map.size() == s, "wafer size ", map.size(),
                     " does not match the net's map size ", s);
      const Tensor img = map.to_tensor();
      std::memcpy(images.data() + k * image_elems, img.data(),
                  static_cast<std::size_t>(image_elems) * sizeof(float));
    }
    const SelectiveOutput out = infer(images);
    const Tensor probs = softmax_rows(out.logits);
    const auto arg = argmax_rows(out.logits);
    const std::int64_t nc = out.logits.dim(1);
    for (std::size_t i = 0; i < arg.size(); ++i) {
      SelectivePrediction& p = all[start + i];
      const float g = out.g[static_cast<std::int64_t>(i)];
      p.label = static_cast<int>(arg[i]);
      p.g = g;
      p.selected = g >= threshold;
      p.confidence = probs[static_cast<std::int64_t>(i) * nc + arg[i]];
    }
  });
  return all;
}

}  // namespace wm::selective::detail

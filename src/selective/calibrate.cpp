#include "selective/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace wm::selective {

float calibrate_threshold(const SelectiveNet& net, const Dataset& validation,
                          double target_coverage, int eval_batch) {
  WM_CHECK(target_coverage > 0.0 && target_coverage <= 1.0,
           "target coverage out of (0,1]");
  WM_CHECK(!validation.empty(), "empty calibration set");

  SelectivePredictor predictor(net, /*threshold=*/0.0f, eval_batch);
  const auto preds = predict_dataset(predictor, validation);
  std::vector<float> gs(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) gs[i] = preds[i].g;
  std::sort(gs.begin(), gs.end(), std::greater<float>());

  // Selecting the k highest-g samples gives coverage k/N; pick k for the
  // target, then cut just below the k-th score so ties stay selected.
  const std::size_t n = gs.size();
  std::size_t k = static_cast<std::size_t>(
      std::llround(target_coverage * static_cast<double>(n)));
  k = std::clamp<std::size_t>(k, 1, n);
  const float kth = gs[k - 1];
  // Nudge below the k-th value; clamp into [0,1].
  const float tau = std::clamp(kth - 1e-6f, 0.0f, 1.0f);
  return tau;
}

}  // namespace wm::selective

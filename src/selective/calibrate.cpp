#include "selective/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace wm::selective {

float refit_threshold(std::span<const float> g_scores,
                      double target_coverage) {
  WM_CHECK(target_coverage > 0.0 && target_coverage <= 1.0,
           "target coverage out of (0,1]");
  WM_CHECK(!g_scores.empty(), "refit_threshold: empty score window");

  std::vector<float> gs(g_scores.begin(), g_scores.end());
  std::sort(gs.begin(), gs.end(), std::greater<float>());

  // Selecting the k highest-g samples gives coverage k/N; pick k for the
  // target, then cut just below the k-th score so ties stay selected.
  const std::size_t n = gs.size();
  std::size_t k = static_cast<std::size_t>(
      std::llround(target_coverage * static_cast<double>(n)));
  k = std::clamp<std::size_t>(k, 1, n);
  const float kth = gs[k - 1];
  // Nudge below the k-th value; clamp into [0,1].
  return std::clamp(kth - 1e-6f, 0.0f, 1.0f);
}

double coverage_at(std::span<const float> g_scores, float tau) {
  if (g_scores.empty()) return 0.0;
  std::size_t selected = 0;
  for (const float g : g_scores) selected += g >= tau;
  return static_cast<double>(selected) / static_cast<double>(g_scores.size());
}

float calibrate_threshold(const SelectiveNet& net, const Dataset& validation,
                          double target_coverage, int eval_batch) {
  WM_CHECK(!validation.empty(), "empty calibration set");

  SelectivePredictor predictor(net, /*threshold=*/0.0f, eval_batch);
  const auto preds = predict_dataset(predictor, validation);
  std::vector<float> gs(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) gs[i] = preds[i].g;
  return refit_threshold(gs, target_coverage);
}

}  // namespace wm::selective

#include "selective/selective_net.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/layers/activations.hpp"
#include "nn/layers/batchnorm2d.hpp"
#include "nn/layers/conv2d.hpp"
#include "nn/layers/flatten.hpp"
#include "nn/layers/linear.hpp"
#include "nn/layers/maxpool2d.hpp"
#include "nn/model_io.hpp"
#include "tensor/tensor_ops.hpp"

namespace wm::selective {

SelectiveNet::SelectiveNet(const SelectiveNetOptions& opts, Rng& rng)
    : opts_(opts) {
  WM_CHECK(opts.map_size >= 8 && opts.map_size % 8 == 0,
           "map size must be a positive multiple of 8 (three 2x2 pools), got ",
           opts.map_size);
  WM_CHECK(opts.num_classes >= 2, "need at least two classes");
  WM_CHECK(opts.conv1_filters > 0 && opts.conv2_filters > 0 &&
               opts.conv3_filters > 0 && opts.fc_units > 0,
           "bad layer sizes");

  const auto add_conv_block = [&](int in_ch, int out_ch, int kernel, int pad) {
    trunk_.add(nn::make_layer<nn::Conv2d>(
        nn::Conv2dOptions{.in_channels = in_ch, .out_channels = out_ch,
                          .kernel = kernel, .stride = 1, .pad = pad},
        rng));
    if (opts.use_batchnorm) {
      trunk_.add(nn::make_layer<nn::BatchNorm2d>(
          nn::BatchNorm2dOptions{.channels = out_ch}));
    }
    trunk_.add(nn::make_layer<nn::ReLU>());
    trunk_.add(nn::make_layer<nn::MaxPool2d>(2));
  };
  add_conv_block(1, opts.conv1_filters, 5, 2);
  add_conv_block(opts.conv1_filters, opts.conv2_filters, 3, 1);
  add_conv_block(opts.conv2_filters, opts.conv3_filters, 3, 1);
  trunk_.add(nn::make_layer<nn::Flatten>());
  const std::int64_t feat = static_cast<std::int64_t>(opts.conv3_filters) *
                            (opts.map_size / 8) * (opts.map_size / 8);
  trunk_.add(nn::make_layer<nn::Linear>(feat, opts.fc_units, rng))
      .add(nn::make_layer<nn::ReLU>());

  head_f_.add(nn::make_layer<nn::Linear>(opts.fc_units, opts.num_classes, rng));
  head_g_.add(nn::make_layer<nn::Linear>(opts.fc_units, 1, rng))
      .add(nn::make_layer<nn::Sigmoid>());
}

SelectiveOutput SelectiveNet::forward(const Tensor& images, bool training) {
  WM_CHECK_SHAPE(images.rank() == 4 && images.dim(1) == 1 &&
                     images.dim(2) == opts_.map_size &&
                     images.dim(3) == opts_.map_size,
                 "SelectiveNet expects (N,1,", opts_.map_size, ",",
                 opts_.map_size, "), got ", images.shape().to_string());
  const Tensor features = trunk_.forward(images, training);
  SelectiveOutput out;
  out.logits = head_f_.forward(features, training);
  out.g = head_g_.forward(features, training);
  return out;
}

SelectiveOutput SelectiveNet::infer(const Tensor& images) const {
  // Safe: forward(..., training=false) touches no member state (§7
  // reentrancy), it only lacks a const qualifier because the training path
  // shares the signature.
  return const_cast<SelectiveNet*>(this)->forward(images, /*training=*/false);
}

void SelectiveNet::backward(const Tensor& grad_logits, const Tensor& grad_g) {
  Tensor grad_features = head_f_.backward(grad_logits);
  grad_features.add_(head_g_.backward(grad_g));
  trunk_.backward(grad_features);
}

void SelectiveNet::zero_grad() {
  trunk_.zero_grad();
  head_f_.zero_grad();
  head_g_.zero_grad();
}

std::vector<nn::Parameter*> SelectiveNet::parameters() {
  return nn::collect_parameters({&trunk_, &head_f_, &head_g_});
}

std::vector<Tensor*> SelectiveNet::buffers() {
  std::vector<Tensor*> out = trunk_.buffers();
  for (Tensor* b : head_f_.buffers()) out.push_back(b);
  for (Tensor* b : head_g_.buffers()) out.push_back(b);
  return out;
}

std::unique_ptr<SelectiveNet> SelectiveNet::clone() const {
  // The fresh net's random init is immediately overwritten, so any seed
  // works; Tensor assignment is a deep value copy.
  Rng scratch(0);
  auto copy = std::make_unique<SelectiveNet>(opts_, scratch);
  // parameters()/buffers() lack const qualifiers only because training
  // mutates through them; enumeration itself touches nothing.
  SelectiveNet& self = const_cast<SelectiveNet&>(*this);
  const std::vector<nn::Parameter*> src = self.parameters();
  const std::vector<nn::Parameter*> dst = copy->parameters();
  WM_ASSERT(src.size() == dst.size(), "clone parameter count mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i]->value = src[i]->value;
  }
  const std::vector<Tensor*> src_buf = self.buffers();
  const std::vector<Tensor*> dst_buf = copy->buffers();
  WM_ASSERT(src_buf.size() == dst_buf.size(), "clone buffer count mismatch");
  for (std::size_t i = 0; i < src_buf.size(); ++i) {
    *dst_buf[i] = *src_buf[i];
  }
  return copy;
}

std::int64_t SelectiveNet::parameter_count() {
  return nn::parameter_count(parameters());
}

void SelectiveNet::save(const std::string& path) {
  nn::save_checkpoint(path, parameters());
}

void SelectiveNet::load(const std::string& path) {
  nn::load_checkpoint(path, parameters());
}

}  // namespace wm::selective

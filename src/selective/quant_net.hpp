// Quantized inference sibling of SelectiveNet: the same trunk + two heads
// architecture with every conv and linear layer replaced by its int8
// counterpart (nn/quant). BatchNorm, when the source net has it, is folded
// into the preceding conv before quantization, and each ReLU is fused into
// the epilogue of the layer before it, so the quantized forward is just
//
//   [qconv+relu -> pool] x3 -> flatten -> qfc+relu -> {qhead_f, qhead_g+sigmoid}
//
// Inference only — there is no backward and no training path. Produced by
// quantize_selective_net() from a trained fp32 net, or reconstructed from a
// WSN2 model file (model_file.hpp).
#pragma once

#include "nn/quant/quant_layers.hpp"
#include "selective/selective_net.hpp"

namespace wm::selective {

class QuantizedSelectiveNet {
 public:
  /// Assembles the net from already-quantized layers (the model-file load
  /// path and the tail of quantize_selective_net). Layer shapes must match
  /// the options; checked.
  QuantizedSelectiveNet(const SelectiveNetOptions& opts,
                        nn::quant::QuantConv2d conv1,
                        nn::quant::QuantConv2d conv2,
                        nn::quant::QuantConv2d conv3,
                        nn::quant::QuantLinear fc,
                        nn::quant::QuantLinear head_f,
                        nn::quant::QuantLinear head_g);

  /// Eval-mode forward over (N, 1, map_size, map_size) images. Const and
  /// reentrant: all scratch is call-local, so one net may serve concurrent
  /// callers — the same contract as SelectiveNet::infer.
  SelectiveOutput infer(const Tensor& images) const;

  const SelectiveNetOptions& options() const { return opts_; }

  // Layer accessors for serialization (model_file.cpp).
  const nn::quant::QuantConv2d& conv1() const { return conv1_; }
  const nn::quant::QuantConv2d& conv2() const { return conv2_; }
  const nn::quant::QuantConv2d& conv3() const { return conv3_; }
  const nn::quant::QuantLinear& fc() const { return fc_; }
  const nn::quant::QuantLinear& head_f() const { return head_f_; }
  const nn::quant::QuantLinear& head_g() const { return head_g_; }

 private:
  SelectiveNetOptions opts_;
  nn::quant::QuantConv2d conv1_;
  nn::quant::QuantConv2d conv2_;
  nn::quant::QuantConv2d conv3_;
  nn::quant::QuantLinear fc_;
  nn::quant::QuantLinear head_f_;
  nn::quant::QuantLinear head_g_;
};

/// Quantizes a trained fp32 net: walks its parameters in construction order,
/// folds BatchNorm (when present) into the conv weights/biases, quantizes
/// every weight matrix per-output-channel and fuses the trunk ReLUs.
/// Non-const because SelectiveNet::parameters() is non-const; the net is not
/// modified.
QuantizedSelectiveNet quantize_selective_net(SelectiveNet& net);

}  // namespace wm::selective

#include "selective/quant_net.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "nn/layers/batchnorm2d.hpp"

namespace wm::selective {

namespace {

/// 2x2 stride-2 max pool over (N, C, H, W) — the only trunk op left in
/// float. It is cheap, and max is order-preserving, so there is nothing to
/// gain from an integer version.
Tensor maxpool2(const Tensor& x) {
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t oh = h / 2;
  const std::int64_t ow = w / 2;
  Tensor out(Shape{x.dim(0), x.dim(1), oh, ow});
  const std::int64_t planes = x.dim(0) * x.dim(1);
  for (std::int64_t pl = 0; pl < planes; ++pl) {
    const float* plane = x.data() + pl * h * w;
    float* oplane = out.data() + pl * oh * ow;
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        const float* p = plane + 2 * i * w + 2 * j;
        oplane[i * ow + j] =
            std::max(std::max(p[0], p[1]), std::max(p[w], p[w + 1]));
      }
    }
  }
  return out;
}

}  // namespace

QuantizedSelectiveNet::QuantizedSelectiveNet(
    const SelectiveNetOptions& opts, nn::quant::QuantConv2d conv1,
    nn::quant::QuantConv2d conv2, nn::quant::QuantConv2d conv3,
    nn::quant::QuantLinear fc, nn::quant::QuantLinear head_f,
    nn::quant::QuantLinear head_g)
    : opts_(opts), conv1_(std::move(conv1)), conv2_(std::move(conv2)),
      conv3_(std::move(conv3)), fc_(std::move(fc)),
      head_f_(std::move(head_f)), head_g_(std::move(head_g)) {
  WM_CHECK(opts_.map_size >= 8 && opts_.map_size % 8 == 0,
           "map size must be a positive multiple of 8 (three 2x2 pools), got ",
           opts_.map_size);
  const std::int64_t feat = static_cast<std::int64_t>(opts_.conv3_filters) *
                            (opts_.map_size / 8) * (opts_.map_size / 8);
  WM_CHECK_SHAPE(
      conv1_.options().in_channels == 1 &&
          conv1_.options().out_channels == opts_.conv1_filters &&
          conv2_.options().in_channels == opts_.conv1_filters &&
          conv2_.options().out_channels == opts_.conv2_filters &&
          conv3_.options().in_channels == opts_.conv2_filters &&
          conv3_.options().out_channels == opts_.conv3_filters &&
          fc_.in_features() == feat && fc_.out_features() == opts_.fc_units &&
          head_f_.in_features() == opts_.fc_units &&
          head_f_.out_features() == opts_.num_classes &&
          head_g_.in_features() == opts_.fc_units &&
          head_g_.out_features() == 1,
      "quantized layer shapes do not match the net options");
}

SelectiveOutput QuantizedSelectiveNet::infer(const Tensor& images) const {
  WM_CHECK_SHAPE(images.rank() == 4 && images.dim(1) == 1 &&
                     images.dim(2) == opts_.map_size &&
                     images.dim(3) == opts_.map_size,
                 "QuantizedSelectiveNet expects (N,1,", opts_.map_size, ",",
                 opts_.map_size, "), got ", images.shape().to_string());
  Tensor x = maxpool2(conv1_.forward(images));  // relu fused into the conv
  x = maxpool2(conv2_.forward(x));
  x = maxpool2(conv3_.forward(x));
  const std::int64_t n = x.dim(0);
  x = x.reshape(Shape{n, x.numel() / std::max<std::int64_t>(n, 1)});
  x = fc_.forward(x);  // relu fused
  SelectiveOutput out;
  out.logits = head_f_.forward(x);
  Tensor g = head_g_.forward(x);
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = 1.0f / (1.0f + std::exp(-g[i]));
  }
  out.g = std::move(g);
  return out;
}

QuantizedSelectiveNet quantize_selective_net(SelectiveNet& net) {
  const SelectiveNetOptions& o = net.options();
  const auto params = net.parameters();
  const auto buffers = net.buffers();
  std::size_t pi = 0;
  std::size_t bi = 0;
  // Parameters come back in construction order (conv[, bn], conv[, bn],
  // conv[, bn], fc, head_f, head_g; weight before bias); the name checks
  // turn any future reordering into a loud failure instead of a silently
  // garbage model.
  const auto take = [&](const char* expect) -> const Tensor& {
    WM_CHECK(pi < params.size(), "selective net ran out of parameters");
    const nn::Parameter* p = params[pi++];
    WM_CHECK(p->name == expect, "unexpected parameter order: got ", p->name,
             ", expected ", expect);
    return p->value;
  };
  const auto take_buffer = [&]() -> const Tensor& {
    WM_CHECK(bi < buffers.size(), "selective net ran out of buffers");
    return *buffers[bi++];
  };
  const auto conv_block = [&](std::int64_t in_ch, std::int64_t out_ch,
                              std::int64_t kernel, std::int64_t pad) {
    Tensor w = take("conv.weight");
    Tensor b = take("conv.bias");
    if (o.use_batchnorm) {
      const Tensor& gamma = take("bn.gamma");
      const Tensor& beta = take("bn.beta");
      const Tensor& mean = take_buffer();
      const Tensor& var = take_buffer();
      std::tie(w, b) = nn::quant::fold_batchnorm(
          w, b, gamma, beta, mean, var, nn::BatchNorm2dOptions{}.eps);
    }
    return nn::quant::QuantConv2d(
        nn::Conv2dOptions{.in_channels = in_ch, .out_channels = out_ch,
                          .kernel = kernel, .stride = 1, .pad = pad},
        w, b, /*fuse_relu=*/true);
  };
  nn::quant::QuantConv2d conv1 = conv_block(1, o.conv1_filters, 5, 2);
  nn::quant::QuantConv2d conv2 =
      conv_block(o.conv1_filters, o.conv2_filters, 3, 1);
  nn::quant::QuantConv2d conv3 =
      conv_block(o.conv2_filters, o.conv3_filters, 3, 1);
  // take() advances a cursor, so each weight/bias pair must be pulled in
  // two sequenced statements, never inside one argument list.
  const Tensor& fc_w = take("linear.weight");
  const Tensor& fc_b = take("linear.bias");
  nn::quant::QuantLinear fc(fc_w, fc_b, /*fuse_relu=*/true);
  const Tensor& hf_w = take("linear.weight");
  const Tensor& hf_b = take("linear.bias");
  nn::quant::QuantLinear head_f(hf_w, hf_b, /*fuse_relu=*/false);
  const Tensor& hg_w = take("linear.weight");
  const Tensor& hg_b = take("linear.bias");
  nn::quant::QuantLinear head_g(hg_w, hg_b, /*fuse_relu=*/false);
  WM_CHECK(pi == params.size() && bi == buffers.size(),
           "selective net has parameters the quantizer does not understand");
  return QuantizedSelectiveNet(o, std::move(conv1), std::move(conv2),
                               std::move(conv3), std::move(fc),
                               std::move(head_f), std::move(head_g));
}

}  // namespace wm::selective

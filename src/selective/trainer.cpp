#include "selective/trainer.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "nn/loss/cross_entropy.hpp"
#include "nn/optim/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/run_log.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor_ops.hpp"

namespace wm::selective {

const EpochStats& TrainingLog::final_epoch() const {
  WM_CHECK(!epochs.empty(), "empty training log");
  return epochs.back();
}

SelectiveTrainer::SelectiveTrainer(const TrainerOptions& opts) : opts_(opts) {
  WM_CHECK(opts.epochs > 0, "epochs must be positive");
  WM_CHECK(opts.batch_size > 0, "batch size must be positive");
  WM_CHECK(opts.learning_rate > 0.0, "learning rate must be positive");
  WM_CHECK(opts.target_coverage > 0.0 && opts.target_coverage <= 1.0,
           "target coverage must be in (0,1]");
  WM_CHECK(opts.min_improvement >= 0.0 && opts.patience >= 0,
           "bad early-stop options");
  WM_CHECK(opts.final_lr_fraction > 0.0 && opts.final_lr_fraction <= 1.0,
           "final_lr_fraction must be in (0,1]");
}

TrainingLog SelectiveTrainer::train(SelectiveNet& net, const Dataset& training,
                                    const Dataset* validation, Rng& rng) const {
  WM_CHECK(!training.empty(), "cannot train on empty dataset");
  const bool ce_only = opts_.target_coverage >= 1.0;
  nn::SelectiveLoss selective_loss({.target_coverage = opts_.target_coverage,
                                    .lambda = opts_.lambda,
                                    .alpha = opts_.alpha});
  nn::Adam optimizer(net.parameters(), {.lr = opts_.learning_rate});

  obs::RunLog& run_log =
      opts_.run_log != nullptr ? *opts_.run_log : obs::run_log_global();
  obs::Registry& registry = obs::Registry::global();
  obs::Counter& epochs_total = registry.counter(
      "wm_train_epochs_total", "selective-trainer epochs completed");
  obs::Gauge& loss_gauge =
      registry.gauge("wm_train_loss", "last epoch mean training loss");
  obs::Gauge& coverage_gauge = registry.gauge(
      "wm_train_coverage", "last epoch empirical coverage (phi-hat)");
  obs::Gauge& risk_gauge = registry.gauge(
      "wm_train_selective_risk", "last epoch empirical selective risk");
  obs::Gauge& val_acc_gauge = registry.gauge(
      "wm_train_val_accuracy", "last epoch full-coverage validation accuracy");
  obs::Gauge& lr_gauge =
      registry.gauge("wm_train_lr", "current learning rate");
  run_log.write("train_begin",
                {{"epochs", opts_.epochs},
                 {"batch_size", opts_.batch_size},
                 {"learning_rate", opts_.learning_rate},
                 {"target_coverage", opts_.target_coverage},
                 {"lambda", opts_.lambda},
                 {"alpha", opts_.alpha},
                 {"mode", ce_only ? "ce" : "selective"},
                 {"train_size", training.size()}});

  Stopwatch watch;
  TrainingLog log;
  float best_loss = std::numeric_limits<float>::infinity();
  int stale_epochs = 0;
  const bool track_best =
      opts_.keep_best && validation != nullptr && !validation->empty();
  double best_val_acc = -1.0;
  std::vector<Tensor> best_params;
  const double base_lr = opts_.learning_rate;
  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    WM_TRACE_SCOPE("train.epoch");
    if (opts_.final_lr_fraction < 1.0 && opts_.epochs > 1) {
      // Exponential schedule from base_lr down to base_lr * fraction.
      const double t = static_cast<double>(epoch) / (opts_.epochs - 1);
      optimizer.options().lr = base_lr * std::pow(opts_.final_lr_fraction, t);
    }
    const auto batches = Dataset::batch_indices(
        training.size(), static_cast<std::size_t>(opts_.batch_size), rng);
    double epoch_loss = 0.0;
    double epoch_cov = 0.0;
    double epoch_risk = 0.0;
    for (const auto& indices : batches) {
      const Batch batch = training.make_batch(indices);
      const SelectiveOutput out = net.forward(batch.images, /*training=*/true);
      net.zero_grad();
      float batch_loss;
      if (ce_only) {
        const auto ce = nn::SoftmaxCrossEntropy::compute(out.logits, batch.labels,
                                                         &batch.weights);
        // No gradient into the selection head in CE mode.
        net.backward(ce.grad, Tensor::zeros(out.g.shape()));
        batch_loss = ce.value;
        epoch_cov += static_cast<double>(indices.size());
        epoch_risk += static_cast<double>(ce.value) * indices.size();
      } else {
        const auto sel = selective_loss.compute(out.logits, out.g, batch.labels,
                                                &batch.weights);
        net.backward(sel.grad_logits, sel.grad_g);
        batch_loss = sel.value;
        epoch_cov += static_cast<double>(sel.coverage) * indices.size();
        epoch_risk += static_cast<double>(sel.selective_risk) * indices.size();
      }
      optimizer.step();
      epoch_loss += static_cast<double>(batch_loss) * indices.size();
    }
    const double n = static_cast<double>(training.size());
    EpochStats stats;
    stats.loss = static_cast<float>(epoch_loss / n);
    stats.coverage = static_cast<float>(epoch_cov / n);
    stats.selective_risk = static_cast<float>(epoch_risk / n);
    if (validation != nullptr && !validation->empty()) {
      WM_TRACE_SCOPE("train.eval");
      stats.val_accuracy = static_cast<float>(argmax_accuracy(net, *validation));
      if (track_best && *stats.val_accuracy > best_val_acc) {
        best_val_acc = *stats.val_accuracy;
        best_params.clear();
        for (const nn::Parameter* p : net.parameters()) {
          best_params.push_back(p->value);
        }
      }
    }
    log.epochs.push_back(stats);
    log_info("epoch ", epoch + 1, "/", opts_.epochs, " loss=", stats.loss,
             " cov=", stats.coverage,
             stats.val_accuracy ? " val_acc=" + std::to_string(*stats.val_accuracy)
                                : "");
    epochs_total.inc();
    loss_gauge.set(stats.loss);
    coverage_gauge.set(stats.coverage);
    risk_gauge.set(stats.selective_risk);
    lr_gauge.set(optimizer.options().lr);
    if (stats.val_accuracy) val_acc_gauge.set(*stats.val_accuracy);
    std::vector<obs::LogField> fields{{"epoch", epoch + 1},
                                      {"loss", stats.loss},
                                      {"coverage", stats.coverage},
                                      {"selective_risk", stats.selective_risk},
                                      {"lr", optimizer.options().lr}};
    if (stats.val_accuracy) {
      fields.emplace_back("val_accuracy", *stats.val_accuracy);
    }
    run_log.write("epoch", fields);

    if (opts_.patience > 0) {
      if (stats.loss < best_loss - opts_.min_improvement) {
        best_loss = stats.loss;
        stale_epochs = 0;
      } else if (++stale_epochs >= opts_.patience) {
        log_info("early stop at epoch ", epoch + 1);
        run_log.write("early_stop", {{"epoch", epoch + 1},
                                     {"best_loss", best_loss}});
        break;
      }
    }
  }
  if (track_best && !best_params.empty()) {
    const auto params = net.parameters();
    WM_ASSERT(params.size() == best_params.size(), "snapshot size mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_params[i];
    }
    log_info("restored best-validation parameters (val_acc=", best_val_acc, ")");
    run_log.write("restore_best", {{"val_accuracy", best_val_acc}});
  }
  log.wall_seconds = watch.seconds();
  run_log.write("train_end",
                {{"epochs_run", static_cast<int>(log.epochs.size())},
                 {"wall_seconds", log.wall_seconds},
                 {"final_loss", log.final_epoch().loss}});
  return log;
}

TrainingLog SelectiveTrainer::fine_tune(SelectiveNet& net,
                                        const Dataset& recent,
                                        Rng& rng) const {
  WM_CHECK(!recent.empty(), "cannot fine-tune on empty dataset");
  obs::RunLog& run_log =
      opts_.run_log != nullptr ? *opts_.run_log : obs::run_log_global();
  run_log.write("fine_tune_begin",
                {{"samples", recent.size()},
                 {"epochs", opts_.epochs},
                 {"learning_rate", opts_.learning_rate},
                 {"target_coverage", opts_.target_coverage}});
  TrainingLog log = train(net, recent, /*validation=*/nullptr, rng);
  run_log.write("fine_tune_end",
                {{"epochs_run", static_cast<int>(log.epochs.size())},
                 {"wall_seconds", log.wall_seconds},
                 {"final_loss", log.final_epoch().loss},
                 {"final_coverage", log.final_epoch().coverage}});
  return log;
}

double argmax_accuracy(SelectiveNet& net, const Dataset& data, int eval_batch) {
  WM_CHECK(!data.empty(), "accuracy on empty dataset");
  WM_CHECK(eval_batch > 0, "bad eval batch size");
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < data.size();
       start += static_cast<std::size_t>(eval_batch)) {
    const std::size_t end =
        std::min(data.size(), start + static_cast<std::size_t>(eval_batch));
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(), start);
    const Batch batch = data.make_batch(indices);
    const SelectiveOutput out = net.forward(batch.images, /*training=*/false);
    const auto preds = argmax_rows(out.logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      correct += (static_cast<int>(preds[i]) == batch.labels[i]);
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace wm::selective

// Selective prediction over the int8 net: the same (f, g, threshold)
// semantics as SelectivePredictor, backed by QuantizedSelectiveNet. Drops
// into everything that takes a wm::Classifier — the serving engine, the
// drift monitor, wm_tool evaluate/classify/serve.
#pragma once

#include <span>
#include <vector>

#include "selective/quant_net.hpp"
#include "serve/classifier.hpp"
#include "wafermap/dataset.hpp"

namespace wm::selective {

class QuantizedSelectivePredictor final : public Classifier {
 public:
  /// Same contract as SelectivePredictor: threshold cuts g, eval_batch
  /// bounds per-forward memory. Thread-safe; per-sample results are
  /// independent of batch composition (activation quantization is
  /// per-sample, see nn/quant).
  explicit QuantizedSelectivePredictor(const QuantizedSelectiveNet& net,
                                       float threshold = 0.5f,
                                       int eval_batch = 256);

  std::vector<SelectivePrediction> predict_batch(
      std::span<const WaferMap> maps) const override;

  int num_classes() const override { return net_.options().num_classes; }

  float threshold() const { return threshold_; }
  void set_threshold(float threshold);

 private:
  const QuantizedSelectiveNet& net_;
  float threshold_;
  int eval_batch_;
};

}  // namespace wm::selective

// Training loop for the selective CNN (Section IV-C setup).
//
// When options.target_coverage == 1 the model is trained with the plain
// cross-entropy loss only (the paper's full-coverage baseline); otherwise it
// optimises the SelectiveNet objective of Eqs. 8-9 on both heads.
#pragma once

#include <optional>
#include <vector>

#include "nn/loss/selective_loss.hpp"
#include "selective/selective_net.hpp"
#include "wafermap/dataset.hpp"

namespace wm::obs {
class RunLog;
}

namespace wm::selective {

struct TrainerOptions {
  int epochs = 20;
  int batch_size = 64;
  double learning_rate = 2e-3;  // Adam, as in the paper
  double target_coverage = 0.5; // c0; 1.0 => cross-entropy only
  /// Coverage-constraint weight. The paper quotes 0.5 (Section IV-C), but at
  /// this reproduction's reduced scale that leaves the constraint inert and
  /// coverage drifts to 0 or 1 on training noise; a stronger weight keeps
  /// the constraint active without fully saturating the sigmoid (the
  /// SelectiveNet paper uses 32). Default 4; WM_LAMBDA overrides in the
  /// experiment harness.
  double lambda = 4.0;
  double alpha = 0.5;           // paper Section IV-C
  /// Stop early when training loss improves less than this for `patience`
  /// consecutive epochs (0 disables).
  double min_improvement = 0.0;
  int patience = 0;
  /// Exponential learning-rate decay: the final epoch runs at
  /// learning_rate * final_lr_fraction (1.0 disables).
  double final_lr_fraction = 1.0;
  /// Restore the parameters of the best validation epoch after training
  /// (needs a validation set; ignored otherwise).
  bool keep_best = false;
  /// JSONL sink for per-epoch stats and learning-phase boundaries. Defaults
  /// to obs::run_log_global() (disabled unless WM_RUN_LOG is set). The same
  /// quantities are also published as wm_train_* metrics in
  /// obs::Registry::global() regardless of this setting.
  obs::RunLog* run_log = nullptr;
};

struct EpochStats {
  float loss = 0.0f;
  float coverage = 0.0f;        // training-batch mean coverage (1.0 for CE mode)
  float selective_risk = 0.0f;
  std::optional<float> val_accuracy;  // plain argmax accuracy on the val set
};

struct TrainingLog {
  std::vector<EpochStats> epochs;
  double wall_seconds = 0.0;

  const EpochStats& final_epoch() const;
};

class SelectiveTrainer {
 public:
  explicit SelectiveTrainer(const TrainerOptions& opts);

  /// Trains the net in place. `validation` (optional) is evaluated with
  /// full-coverage argmax accuracy after each epoch.
  TrainingLog train(SelectiveNet& net, const Dataset& training,
                    const Dataset* validation, Rng& rng) const;

  /// Incremental fit: continues training an already-trained net on a small
  /// recent-sample set — the drift-adaptation stage-2 path. Same loop as
  /// train() (use few epochs and a reduced learning rate in the options to
  /// nudge rather than re-learn), bracketed by fine_tune_begin/fine_tune_end
  /// run-log events so adaptation-driven updates are distinguishable from
  /// offline training in the run history.
  TrainingLog fine_tune(SelectiveNet& net, const Dataset& recent,
                        Rng& rng) const;

  const TrainerOptions& options() const { return opts_; }

 private:
  TrainerOptions opts_;
};

/// Full-coverage argmax accuracy of the prediction head on a dataset.
double argmax_accuracy(SelectiveNet& net, const Dataset& data,
                       int eval_batch = 256);

}  // namespace wm::selective

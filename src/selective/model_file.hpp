// Self-describing model files: architecture options + parameters + buffers
// in one artifact, so a trained selective classifier can be shipped and
// reloaded without out-of-band configuration (used by the wm_tool CLI).
#pragma once

#include <memory>
#include <string>

#include "selective/selective_net.hpp"

namespace wm::selective {

/// Writes options, parameters and BatchNorm running statistics.
void save_model(const std::string& path, SelectiveNet& net);

/// Reconstructs the network from a file written by save_model.
std::unique_ptr<SelectiveNet> load_model(const std::string& path);

}  // namespace wm::selective

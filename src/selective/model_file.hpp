// Self-describing model files: architecture options + parameters + buffers
// in one artifact, so a trained selective classifier can be shipped and
// reloaded without out-of-band configuration (used by the wm_tool CLI).
//
// The format is versioned by the last magic byte: "WSN1" is the fp32
// network (options + parameters + BatchNorm buffers), "WSN2" is the
// quantized network (options + per-layer int8 weights, scales and float
// biases). Loaders reject files whose version they do not understand with
// an error naming the version, so a newer tool's artifact fails loudly
// rather than being misparsed.
#pragma once

#include <memory>
#include <string>

#include "selective/predictor.hpp"
#include "selective/quant_net.hpp"
#include "selective/quant_predictor.hpp"
#include "selective/selective_net.hpp"

namespace wm::selective {

/// Writes options, parameters and BatchNorm running statistics (WSN1).
void save_model(const std::string& path, SelectiveNet& net);

/// Reconstructs the network from a file written by save_model. Rejects
/// quantized (WSN2) and unknown-version files with a descriptive error.
std::unique_ptr<SelectiveNet> load_model(const std::string& path);

/// Writes the quantized network: options, then each layer's int8 weights,
/// per-channel scales and float bias (WSN2).
void save_quantized_model(const std::string& path,
                          const QuantizedSelectiveNet& net);

/// Reconstructs a quantized network from a file written by
/// save_quantized_model. Rejects fp32 (WSN1) and unknown-version files.
std::unique_ptr<QuantizedSelectiveNet> load_quantized_model(
    const std::string& path);

enum class ModelFileKind { kFloat, kQuantized };

/// Reads only the header and reports which loader the file needs. Throws on
/// unreadable files and unknown versions.
ModelFileKind probe_model_file(const std::string& path);

/// A model of either kind plus a ready predictor over it. Exactly one of
/// fp32 / quantized is non-null; `predictor` borrows from it, so the struct
/// must outlive every use of the classifier.
struct LoadedModel {
  std::unique_ptr<SelectiveNet> fp32;
  std::unique_ptr<QuantizedSelectiveNet> quantized;
  std::unique_ptr<Classifier> predictor;
  int map_size = 0;

  bool is_quantized() const { return quantized != nullptr; }
};

/// Loads either format (dispatching on the version byte) and wraps it in
/// the matching predictor, so CLI paths serve fp32 and quantized artifacts
/// interchangeably.
LoadedModel load_model_auto(const std::string& path, float threshold,
                            int eval_batch = 256);

}  // namespace wm::selective

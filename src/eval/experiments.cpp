#include "eval/experiments.hpp"

#include <cstdlib>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "selective/calibrate.hpp"

namespace wm::eval {

ExperimentConfig ExperimentConfig::from_env() {
  ExperimentConfig config;
  const double scale = bench_scale();
  Config env;
  config.map_size = env.get_int("map_size", config.map_size);
  config.data_scale = env.get_double("data_scale", config.data_scale * scale);
  config.augment_target =
      env.get_int("augment_target",
                  std::max(20, static_cast<int>(config.augment_target * scale)));
  config.trainer.epochs = env.get_int("epochs", 12);
  config.trainer.lambda = env.get_double("lambda", config.trainer.lambda);
  config.trainer.batch_size = env.get_int("batch_size", config.trainer.batch_size);
  config.seed = static_cast<std::uint64_t>(env.get_int("seed", 2020));
  config.augment = env.get_bool("augment", config.augment);
  return config;
}

namespace {

void apply_config(const ExperimentConfig& in, ExperimentConfig& out) {
  out = in;
  out.net.map_size = in.map_size;
  out.net.num_classes = kNumDefectTypes;
  // BatchNorm is this reproduction's concession to the reduced epoch budget
  // (DESIGN.md §1); WM_BATCHNORM=0 restores the paper's exact Table I trunk.
  Config env;
  out.net.use_batchnorm = env.get_bool("batchnorm", true);
  out.augmentation.target_per_class = in.augment_target;
  out.augmentation.synthetic_weight = in.synthetic_weight;
  out.augmentation.cae.map_size = in.map_size;
}

}  // namespace

ExperimentData prepare_data(const ExperimentConfig& config) {
  const auto train_counts =
      synth::scale_counts(synth::table2_training_counts(), config.data_scale);
  const auto test_counts =
      synth::scale_counts(synth::table2_testing_counts(), config.data_scale);
  return prepare_data(config, train_counts, test_counts);
}

ExperimentData prepare_data(const ExperimentConfig& config,
                            const std::array<int, kNumDefectTypes>& train_counts,
                            const std::array<int, kNumDefectTypes>& test_counts) {
  ExperimentConfig cfg;
  apply_config(config, cfg);
  Rng rng(cfg.seed);

  ExperimentData data;
  synth::DatasetSpec train_spec{.map_size = cfg.map_size,
                                .class_counts = train_counts};
  data.train_raw = synth::generate_dataset(train_spec, rng);
  data.train_raw.shuffle(rng);
  synth::DatasetSpec test_spec{.map_size = cfg.map_size,
                               .class_counts = test_counts};
  data.test = synth::generate_dataset(test_spec, rng);

  if (cfg.augment) {
    augment::Augmentor augmentor(cfg.augmentation);
    Rng aug_rng = rng.fork();
    data.train_aug = augmentor.augment_dataset(data.train_raw, aug_rng);
    data.train_aug.shuffle(rng);
  } else {
    data.train_aug = data.train_raw;
  }
  log_info("experiment data: train=", data.train_raw.size(), " train_aug=",
           data.train_aug.size(), " test=", data.test.size(), " map=",
           cfg.map_size, "x", cfg.map_size);
  return data;
}

std::unique_ptr<selective::SelectiveNet> train_selective_model(
    const ExperimentConfig& config, const Dataset& training, double c0,
    Rng& rng, selective::TrainingLog* log_out) {
  WM_CHECK(c0 > 0.0 && c0 <= 1.0, "c0 out of (0,1]");
  ExperimentConfig cfg;
  apply_config(config, cfg);
  auto net = std::make_unique<selective::SelectiveNet>(cfg.net, rng);
  selective::TrainerOptions topts = cfg.trainer;
  topts.target_coverage = c0;
  // Reduced-budget training aids: decay the LR and keep the best epoch
  // against a 10% validation carve-out of the (augmented) training data.
  topts.final_lr_fraction = 0.15;
  topts.keep_best = true;
  Rng split_rng = rng.fork();
  const auto [train_split, val_split] =
      training.stratified_split(0.9, split_rng);
  selective::SelectiveTrainer trainer(topts);
  selective::TrainingLog log =
      trainer.train(*net, train_split, &val_split, rng);
  if (log_out != nullptr) *log_out = std::move(log);
  return net;
}

Dataset make_calibration_set(const ExperimentConfig& config) {
  synth::DatasetSpec spec;
  spec.map_size = config.map_size;
  spec.class_counts =
      synth::scale_counts(synth::table2_testing_counts(), config.data_scale);
  Rng rng(config.seed + 0xCA11B);  // disjoint from train/test streams
  return synth::generate_dataset(spec, rng);
}

float calibrated_threshold(const ExperimentConfig& config,
                           const selective::SelectiveNet& net,
                           double coverage) {
  const Dataset calibration = make_calibration_set(config);
  return selective::calibrate_threshold(net, calibration, coverage);
}

ClassifierEval evaluate_classifier(const Classifier& classifier,
                                   const Dataset& test) {
  WM_CHECK(!test.empty(), "empty test set");
  const auto preds = predict_dataset(classifier, test);
  std::vector<int> labels;
  labels.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    labels.push_back(static_cast<int>(test[i].label));
  }
  ClassifierEval out;
  out.coverage = coverage_of(preds);
  out.selective_acc = selective_accuracy(preds, labels);
  out.full_acc = full_accuracy(preds, labels);
  for (const auto& p : preds) out.abstained += !p.selected;
  return out;
}

}  // namespace wm::eval

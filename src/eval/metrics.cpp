#include "eval/metrics.hpp"

#include "common/error.hpp"

namespace wm::eval {

ConfusionMatrix::ConfusionMatrix(int num_classes) : num_classes_(num_classes) {
  WM_CHECK(num_classes >= 2, "need at least two classes");
  counts_.assign(static_cast<std::size_t>(num_classes) * num_classes, 0);
}

void ConfusionMatrix::check_class(int cls) const {
  WM_CHECK(cls >= 0 && cls < num_classes_, "class ", cls, " out of [0,",
           num_classes_, ")");
}

void ConfusionMatrix::add(int truth, int predicted) {
  check_class(truth);
  check_class(predicted);
  counts_[static_cast<std::size_t>(truth) * num_classes_ + predicted]++;
  ++total_;
}

int ConfusionMatrix::at(int truth, int predicted) const {
  check_class(truth);
  check_class(predicted);
  return counts_[static_cast<std::size_t>(truth) * num_classes_ + predicted];
}

int ConfusionMatrix::support(int cls) const {
  check_class(cls);
  int n = 0;
  for (int p = 0; p < num_classes_; ++p) n += at(cls, p);
  return n;
}

int ConfusionMatrix::predicted_count(int cls) const {
  check_class(cls);
  int n = 0;
  for (int t = 0; t < num_classes_; ++t) n += at(t, cls);
  return n;
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  int correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / total_;
}

double ConfusionMatrix::accuracy_excluding(int excluded) const {
  check_class(excluded);
  int correct = 0;
  int total = 0;
  for (int t = 0; t < num_classes_; ++t) {
    if (t == excluded) continue;
    total += support(t);
    correct += at(t, t);
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

double ConfusionMatrix::precision(int cls) const {
  const int denom = predicted_count(cls);
  return denom == 0 ? 0.0 : static_cast<double>(at(cls, cls)) / denom;
}

double ConfusionMatrix::recall(int cls) const {
  const int denom = support(cls);
  return denom == 0 ? 0.0 : static_cast<double>(at(cls, cls)) / denom;
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix confusion_from_labels(const std::vector<int>& truth,
                                      const std::vector<int>& predicted,
                                      int num_classes) {
  WM_CHECK(truth.size() == predicted.size(), "label vector size mismatch");
  ConfusionMatrix cm(num_classes);
  for (std::size_t i = 0; i < truth.size(); ++i) cm.add(truth[i], predicted[i]);
  return cm;
}

ConfusionMatrix selective_confusion(
    const std::vector<selective::SelectivePrediction>& preds,
    const std::vector<int>& labels, int num_classes) {
  WM_CHECK(preds.size() == labels.size(), "prediction/label size mismatch");
  ConfusionMatrix cm(num_classes);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i].selected) cm.add(labels[i], preds[i].label);
  }
  return cm;
}

SelectiveClassReport selective_report(
    const std::vector<selective::SelectivePrediction>& preds,
    const std::vector<int>& labels, int num_classes) {
  WM_CHECK(preds.size() == labels.size(), "prediction/label size mismatch");
  const ConfusionMatrix cm = selective_confusion(preds, labels, num_classes);
  SelectiveClassReport report;
  report.precision.resize(static_cast<std::size_t>(num_classes));
  report.recall.resize(static_cast<std::size_t>(num_classes));
  report.f1.resize(static_cast<std::size_t>(num_classes));
  report.covered.resize(static_cast<std::size_t>(num_classes), 0);
  report.support.resize(static_cast<std::size_t>(num_classes), 0);
  for (int c = 0; c < num_classes; ++c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    report.precision[sc] = cm.precision(c);
    report.recall[sc] = cm.recall(c);
    report.f1[sc] = cm.f1(c);
    report.covered[sc] = cm.support(c);
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    WM_CHECK(labels[i] >= 0 && labels[i] < num_classes, "label out of range");
    report.support[static_cast<std::size_t>(labels[i])]++;
  }
  report.total_covered = cm.total();
  report.coverage = preds.empty()
                        ? 0.0
                        : static_cast<double>(cm.total()) /
                              static_cast<double>(preds.size());
  report.overall_accuracy = cm.total() == 0 ? 1.0 : cm.accuracy();
  return report;
}

}  // namespace wm::eval

#include "eval/tables.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "wafermap/defect_types.hpp"

namespace wm::eval {

std::vector<std::string> defect_class_names() {
  std::vector<std::string> names;
  names.reserve(kNumDefectTypes);
  for (DefectType t : all_defect_types()) names.push_back(to_string(t));
  return names;
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  WM_CHECK(!rows.empty(), "empty table");
  const std::size_t cols = rows.front().size();
  for (const auto& row : rows) {
    WM_CHECK(row.size() == cols, "ragged table rows");
  }
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < cols; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < cols; ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  rule();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      os << ' ' << pad_left(rows[r][c], widths[c]) << " |";
    }
    os << '\n';
    if (r == 0) rule();
  }
  rule();
  return os.str();
}

std::string render_confusion(const ConfusionMatrix& cm,
                             const std::vector<std::string>& class_names) {
  WM_CHECK(static_cast<int>(class_names.size()) == cm.num_classes(),
           "class name count mismatch");
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"true \\ pred"};
  header.insert(header.end(), class_names.begin(), class_names.end());
  rows.push_back(header);
  for (int t = 0; t < cm.num_classes(); ++t) {
    std::vector<std::string> row = {class_names[static_cast<std::size_t>(t)]};
    for (int p = 0; p < cm.num_classes(); ++p) {
      row.push_back(std::to_string(cm.at(t, p)));
    }
    rows.push_back(std::move(row));
  }
  return render_table(rows);
}

std::string render_selective_block(const SelectiveClassReport& report,
                                   const std::vector<std::string>& class_names,
                                   double c0) {
  const int nc = static_cast<int>(class_names.size());
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"class", "Pre", "Rec", "f1", "Cov"});
  for (int c = 0; c < nc; ++c) {
    const std::size_t sc = static_cast<std::size_t>(c);
    std::vector<std::string> row = {class_names[sc]};
    if (report.covered[sc] == 0) {
      row.insert(row.end(), {"-", "-", "-", "0"});
    } else {
      row.push_back(format_fixed(report.precision[sc], 2));
      row.push_back(format_fixed(report.recall[sc], 2));
      row.push_back(format_fixed(report.f1[sc], 2));
      row.push_back(std::to_string(report.covered[sc]));
    }
    rows.push_back(std::move(row));
  }
  std::ostringstream os;
  os << "c0 = " << format_fixed(c0, 2) << "\n" << render_table(rows);
  os << "Overall: accuracy = " << format_percent(report.overall_accuracy)
     << ", coverage = " << report.total_covered << " ("
     << format_percent(report.coverage) << ")\n";
  return os.str();
}

std::string render_newdefect_table(
    const std::vector<std::string>& class_names,
    const std::vector<double>& original_recall,
    const std::vector<double>& selective_recall,
    const std::vector<int>& covered, const std::vector<int>& support) {
  const std::size_t nc = class_names.size();
  WM_CHECK(original_recall.size() == nc && selective_recall.size() == nc &&
               covered.size() == nc && support.size() == nc,
           "table column size mismatch");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"class", "Original Recall", "Selective Recall", "Coverage"});
  for (std::size_t c = 0; c < nc; ++c) {
    std::vector<std::string> row = {class_names[c]};
    row.push_back(format_fixed(original_recall[c], 2));
    row.push_back(covered[c] == 0 ? "-" : format_fixed(selective_recall[c], 2));
    const double pct = support[c] == 0
                           ? 0.0
                           : static_cast<double>(covered[c]) / support[c];
    row.push_back(std::to_string(covered[c]) + " (" + format_percent(pct) + ")");
    rows.push_back(std::move(row));
  }
  return render_table(rows);
}

}  // namespace wm::eval

// Evaluation metrics: confusion matrices, per-class precision/recall/F1,
// and selective (reject-option) statistics matching the paper's tables.
#pragma once

#include <vector>

#include "selective/predictor.hpp"

namespace wm::eval {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int truth, int predicted);

  int num_classes() const { return num_classes_; }
  int at(int truth, int predicted) const;
  int total() const { return total_; }

  /// Row sum: number of samples whose true class is cls.
  int support(int cls) const;
  /// Column sum: number of samples predicted as cls.
  int predicted_count(int cls) const;

  double accuracy() const;

  /// Accuracy over samples whose true class is NOT `excluded` — the paper's
  /// "defect detection rate" excludes the None class.
  double accuracy_excluding(int excluded) const;

  /// Per-class metrics; 0 when undefined (no predictions / no support).
  double precision(int cls) const;
  double recall(int cls) const;
  double f1(int cls) const;

 private:
  void check_class(int cls) const;

  int num_classes_;
  int total_ = 0;
  std::vector<int> counts_;  // row-major truth x predicted
};

/// Builds a confusion matrix from plain label vectors.
ConfusionMatrix confusion_from_labels(const std::vector<int>& truth,
                                      const std::vector<int>& predicted,
                                      int num_classes);

/// Per-class selective statistics for one prediction run (Table II columns).
struct SelectiveClassReport {
  std::vector<double> precision;  // over selected samples
  std::vector<double> recall;
  std::vector<double> f1;
  std::vector<int> covered;       // selected sample count per true class
  std::vector<int> support;       // total sample count per true class
  double overall_accuracy = 0.0;  // on selected samples
  int total_covered = 0;
  double coverage = 0.0;          // total_covered / N
};

SelectiveClassReport selective_report(
    const std::vector<selective::SelectivePrediction>& preds,
    const std::vector<int>& labels, int num_classes);

/// Confusion matrix over the *selected* samples only.
ConfusionMatrix selective_confusion(
    const std::vector<selective::SelectivePrediction>& preds,
    const std::vector<int>& labels, int num_classes);

}  // namespace wm::eval

// ASCII table rendering matching the paper's result tables.
#pragma once

#include <string>
#include <vector>

#include "eval/metrics.hpp"

namespace wm::eval {

/// Generic fixed-width table: first row is the header.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// Confusion matrix with class names on both axes (Table III style).
std::string render_confusion(const ConfusionMatrix& cm,
                             const std::vector<std::string>& class_names);

/// One Table II block: per-class Pre / Rec / f1 / Cov plus the overall
/// accuracy/coverage footer for a single c0 setting.
std::string render_selective_block(const SelectiveClassReport& report,
                                   const std::vector<std::string>& class_names,
                                   double c0);

/// Table IV: original (full-coverage) recall vs selective recall vs coverage.
std::string render_newdefect_table(
    const std::vector<std::string>& class_names,
    const std::vector<double>& original_recall,
    const std::vector<double>& selective_recall,
    const std::vector<int>& covered, const std::vector<int>& support);

/// The nine wafer-class names in enum order.
std::vector<std::string> defect_class_names();

}  // namespace wm::eval

// Shared experiment harness used by the bench/ binaries.
//
// Centralises the scaled Table II data pipeline (generate -> split ->
// augment) and the model training calls so every table/figure bench runs the
// same way. All sizes scale with WM_BENCH_SCALE (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <memory>

#include "augment/augmentor.hpp"
#include "selective/predictor.hpp"
#include "selective/selective_net.hpp"
#include "selective/trainer.hpp"
#include "wafermap/synth/generator.hpp"

namespace wm::eval {

struct ExperimentConfig {
  int map_size = 24;
  /// Fraction of the paper's Table II counts to synthesise.
  double data_scale = 0.035;
  /// Augmentation target T, scaled from the paper's 8000 by the same factor.
  int augment_target = 200;
  float synthetic_weight = 0.5f;
  bool augment = true;
  std::uint64_t seed = 2020;

  selective::SelectiveNetOptions net;       // map_size/num_classes overwritten
  selective::TrainerOptions trainer;        // target_coverage set per run
  augment::AugmentOptions augmentation;     // cae/map_size overwritten

  /// Default configuration scaled by WM_BENCH_SCALE (and WM_MAP_SIZE /
  /// WM_EPOCHS / WM_DATA_SCALE overrides for experimentation).
  static ExperimentConfig from_env();
};

/// The three datasets every experiment consumes.
struct ExperimentData {
  Dataset train_raw;  // original (pre-augmentation) training wafers
  Dataset train_aug;  // train_raw + CAE synthetics (== train_raw when off)
  Dataset test;       // untouched originals
};

/// Synthesises the scaled Table II mix, splits, and runs Algorithm 1 on the
/// training half (when config.augment).
ExperimentData prepare_data(const ExperimentConfig& config);

/// Same, but using a caller-supplied class mix for train and test.
ExperimentData prepare_data(const ExperimentConfig& config,
                            const std::array<int, kNumDefectTypes>& train_counts,
                            const std::array<int, kNumDefectTypes>& test_counts);

/// Trains a SelectiveNet at the given target coverage (c0 == 1 -> plain CE).
/// Returns the trained net; `log_out` (optional) receives the training log.
std::unique_ptr<selective::SelectiveNet> train_selective_model(
    const ExperimentConfig& config, const Dataset& training, double c0,
    Rng& rng, selective::TrainingLog* log_out = nullptr);

/// Fresh nominal-distribution calibration set (never overlapping train/test
/// seeds) used to place the abstention threshold at a coverage budget —
/// the deployment workflow of Section IV-D.
Dataset make_calibration_set(const ExperimentConfig& config);

/// Threshold on g realising approximately `coverage` on the calibration set.
float calibrated_threshold(const ExperimentConfig& config,
                           const selective::SelectiveNet& net, double coverage);

/// Headline numbers of one classifier on one labelled test set.
struct ClassifierEval {
  double coverage = 0.0;       // fraction of wafers auto-labelled
  double selective_acc = 0.0;  // accuracy over the selected wafers
  double full_acc = 0.0;       // accuracy ignoring the reject option
  std::size_t abstained = 0;   // wafers routed to manual inspection
};

/// Runs any wm::Classifier — the selective CNN or the SVM baseline — over a
/// labelled test set through the common interface and scores it. This is how
/// experiment code compares the two without caring which model it holds.
ClassifierEval evaluate_classifier(const Classifier& classifier,
                                   const Dataset& test);

}  // namespace wm::eval

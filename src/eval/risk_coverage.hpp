// Risk-coverage analysis: the full curve traced by sweeping the abstention
// threshold over a prediction set, and its area summary (AURC). This extends
// the paper's Fig 5 (which samples four c0 values) to the complete
// post-hoc trade-off of a single trained model.
#pragma once

#include <vector>

#include "selective/predictor.hpp"

namespace wm::eval {

struct RiskCoveragePoint {
  double coverage = 0.0;  // fraction of samples selected
  double risk = 0.0;      // error rate among selected samples
  float threshold = 0.0f; // g threshold realising this point
};

/// Sorts samples by decreasing selection score and emits one point per
/// prefix: selecting the k most-confident samples gives coverage k/N and
/// risk = errors(k)/k. Points are ordered by increasing coverage.
std::vector<RiskCoveragePoint> risk_coverage_curve(
    const std::vector<selective::SelectivePrediction>& preds,
    const std::vector<int>& labels);

/// Area under the risk-coverage curve (trapezoidal, over coverage in [0,1];
/// the empty-selection endpoint has risk 0 by convention). Lower is better.
double aurc(const std::vector<RiskCoveragePoint>& curve);

/// Risk at the smallest curve point with coverage >= the target
/// (1.0/full risk when the target exceeds the achievable coverage range).
double risk_at_coverage(const std::vector<RiskCoveragePoint>& curve,
                        double coverage);

}  // namespace wm::eval

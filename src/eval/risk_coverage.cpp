#include "eval/risk_coverage.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace wm::eval {

std::vector<RiskCoveragePoint> risk_coverage_curve(
    const std::vector<selective::SelectivePrediction>& preds,
    const std::vector<int>& labels) {
  WM_CHECK(preds.size() == labels.size(), "prediction/label size mismatch");
  WM_CHECK(!preds.empty(), "empty prediction set");
  const std::size_t n = preds.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return preds[a].g > preds[b].g;
  });

  std::vector<RiskCoveragePoint> curve;
  curve.reserve(n);
  std::size_t errors = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    errors += (preds[i].label != labels[i]);
    curve.push_back({.coverage = static_cast<double>(k + 1) / n,
                     .risk = static_cast<double>(errors) / (k + 1),
                     .threshold = preds[i].g});
  }
  return curve;
}

double aurc(const std::vector<RiskCoveragePoint>& curve) {
  WM_CHECK(!curve.empty(), "empty curve");
  double area = 0.0;
  double prev_cov = 0.0;
  double prev_risk = 0.0;  // empty selection: zero risk by convention
  for (const auto& pt : curve) {
    area += 0.5 * (pt.risk + prev_risk) * (pt.coverage - prev_cov);
    prev_cov = pt.coverage;
    prev_risk = pt.risk;
  }
  return area;
}

double risk_at_coverage(const std::vector<RiskCoveragePoint>& curve,
                        double coverage) {
  WM_CHECK(!curve.empty(), "empty curve");
  WM_CHECK(coverage >= 0.0 && coverage <= 1.0, "coverage out of [0,1]");
  for (const auto& pt : curve) {
    if (pt.coverage >= coverage) return pt.risk;
  }
  return curve.back().risk;
}

}  // namespace wm::eval

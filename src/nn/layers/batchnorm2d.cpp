#include "nn/layers/batchnorm2d.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "common/threadpool.hpp"

namespace wm::nn {

BatchNorm2d::BatchNorm2d(const BatchNorm2dOptions& opts)
    : opts_(opts),
      gamma_("bn.gamma", Tensor::ones(Shape{opts.channels})),
      beta_("bn.beta", Tensor(Shape{opts.channels})),
      running_mean_(Shape{opts.channels}),
      running_var_(Tensor::ones(Shape{opts.channels})) {
  WM_CHECK(opts.channels > 0, "BatchNorm2d needs positive channel count");
  WM_CHECK(opts.eps > 0.0, "BatchNorm2d eps must be positive");
  WM_CHECK(opts.momentum > 0.0 && opts.momentum <= 1.0, "bad momentum");
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  WM_TRACE_SCOPE("batchnorm2d.fwd");
  WM_COUNTER_INC("wm_nn_batchnorm2d_forward_total", "BatchNorm2d forward passes");
  WM_CHECK_SHAPE(input.rank() == 4 && input.dim(1) == opts_.channels,
                 "BatchNorm2d expects (N,", opts_.channels, ",H,W), got ",
                 input.shape().to_string());
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t spatial = input.dim(2) * input.dim(3);
  const std::int64_t per_channel = n * spatial;
  WM_CHECK(per_channel > 0, "empty batch");

  Tensor out(input.shape());
  if (training) {
    normalized_ = Tensor(input.shape());
    inv_std_.assign(static_cast<std::size_t>(c), 0.0f);
    trained_forward_ = true;
  }

  // Channels are fully independent (stats, running buffers and output strides
  // are all per-channel), so fanning out across channels is bit-identical to
  // the serial loop for any thread count.
  ThreadPool::global().parallel_for(0, static_cast<std::size_t>(c),
                                    [&](std::size_t chv) {
    const std::int64_t ch = static_cast<std::int64_t>(chv);
    float mean;
    float var;
    if (training) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = input.data() + (i * c + ch) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) acc += p[s];
      }
      mean = static_cast<float>(acc / static_cast<double>(per_channel));
      double vacc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = input.data() + (i * c + ch) * spatial;
        for (std::int64_t s = 0; s < spatial; ++s) {
          const double d = p[s] - mean;
          vacc += d * d;
        }
      }
      var = static_cast<float>(vacc / static_cast<double>(per_channel));
      const float m = static_cast<float>(opts_.momentum);
      running_mean_[ch] = (1.0f - m) * running_mean_[ch] + m * mean;
      running_var_[ch] = (1.0f - m) * running_var_[ch] + m * var;
    } else {
      mean = running_mean_[ch];
      var = running_var_[ch];
    }
    const float inv_std = 1.0f / std::sqrt(var + static_cast<float>(opts_.eps));
    if (training) inv_std_[static_cast<std::size_t>(ch)] = inv_std;
    const float g = gamma_.value[ch];
    const float b = beta_.value[ch];
    for (std::int64_t i = 0; i < n; ++i) {
      const float* p = input.data() + (i * c + ch) * spatial;
      float* o = out.data() + (i * c + ch) * spatial;
      float* xh = training ? normalized_.data() + (i * c + ch) * spatial : nullptr;
      for (std::int64_t s = 0; s < spatial; ++s) {
        const float norm = (p[s] - mean) * inv_std;
        if (xh != nullptr) xh[s] = norm;
        o[s] = g * norm + b;
      }
    }
  });
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  WM_TRACE_SCOPE("batchnorm2d.bwd");
  WM_COUNTER_INC("wm_nn_batchnorm2d_backward_total", "BatchNorm2d backward passes");
  WM_CHECK(trained_forward_, "BatchNorm2d backward without training forward");
  WM_CHECK_SHAPE(grad_output.same_shape(normalized_),
                 "BatchNorm2d backward shape mismatch");
  const std::int64_t n = grad_output.dim(0);
  const std::int64_t c = grad_output.dim(1);
  const std::int64_t spatial = grad_output.dim(2) * grad_output.dim(3);
  const std::int64_t per_channel = n * spatial;

  Tensor grad_input(grad_output.shape());
  // Same per-channel independence as forward: dgamma/dbeta/grad_input writes
  // touch only this channel's slots.
  ThreadPool::global().parallel_for(0, static_cast<std::size_t>(c),
                                    [&](std::size_t chv) {
    const std::int64_t ch = static_cast<std::int64_t>(chv);
    // Accumulate dgamma, dbeta and the two reduction terms of the
    // batch-norm backward formula.
    double sum_dy = 0.0;
    double sum_dy_xh = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dy = grad_output.data() + (i * c + ch) * spatial;
      const float* xh = normalized_.data() + (i * c + ch) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        sum_dy += dy[s];
        sum_dy_xh += static_cast<double>(dy[s]) * xh[s];
      }
    }
    gamma_.grad[ch] += static_cast<float>(sum_dy_xh);
    beta_.grad[ch] += static_cast<float>(sum_dy);

    const float g = gamma_.value[ch];
    const float inv_std = inv_std_[static_cast<std::size_t>(ch)];
    const float k = g * inv_std / static_cast<float>(per_channel);
    const float mean_dy = static_cast<float>(sum_dy);
    const float mean_dy_xh = static_cast<float>(sum_dy_xh);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* dy = grad_output.data() + (i * c + ch) * spatial;
      const float* xh = normalized_.data() + (i * c + ch) * spatial;
      float* dx = grad_input.data() + (i * c + ch) * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) {
        dx[s] = k * (static_cast<float>(per_channel) * dy[s] - mean_dy -
                     xh[s] * mean_dy_xh);
      }
    }
  });
  return grad_input;
}

std::string BatchNorm2d::name() const {
  std::ostringstream os;
  os << "BatchNorm2d(" << opts_.channels << ")";
  return os.str();
}

}  // namespace wm::nn

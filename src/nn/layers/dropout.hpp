// Inverted dropout: active only in training mode.
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace wm::nn {

class Dropout final : public Module {
 public:
  /// p is the drop probability in [0, 1).
  Dropout(double p, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  double drop_probability() const { return p_; }

 private:
  double p_;
  Rng rng_;
  Tensor mask_;        // scaled keep mask from the last training forward
  bool used_mask_ = false;
};

}  // namespace wm::nn

#include "nn/layers/activations.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wm::nn {

// All activations gate their backward caches on `training` so eval-mode
// forwards mutate no member state and are safe to run concurrently.

Tensor ReLU::forward(const Tensor& input, bool training) {
  if (training) input_ = input;
  Tensor out(input.shape());
  const float* in = input.data();
  float* po = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = in[i] > 0.0f ? in[i] : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  WM_CHECK_SHAPE(grad_output.same_shape(input_), "ReLU backward shape mismatch");
  Tensor grad(input_.shape());
  const float* in = input_.data();
  const float* go = grad_output.data();
  float* g = grad.data();
  const std::int64_t n = input_.numel();
  for (std::int64_t i = 0; i < n; ++i) g[i] = in[i] > 0.0f ? go[i] : 0.0f;
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  const float* in = input.data();
  float* po = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    // Split by sign for numerical stability at large |x|.
    const float x = in[i];
    if (x >= 0.0f) {
      po[i] = 1.0f / (1.0f + std::exp(-x));
    } else {
      const float e = std::exp(x);
      po[i] = e / (1.0f + e);
    }
  }
  if (training) output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  WM_CHECK_SHAPE(grad_output.same_shape(output_), "Sigmoid backward shape mismatch");
  Tensor grad(output_.shape());
  const float* s = output_.data();
  const float* go = grad_output.data();
  float* g = grad.data();
  const std::int64_t n = output_.numel();
  for (std::int64_t i = 0; i < n; ++i) g[i] = go[i] * s[i] * (1.0f - s[i]);
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  const float* in = input.data();
  float* po = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] = std::tanh(in[i]);
  if (training) output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  WM_CHECK_SHAPE(grad_output.same_shape(output_), "Tanh backward shape mismatch");
  Tensor grad(output_.shape());
  const float* t = output_.data();
  const float* go = grad_output.data();
  float* g = grad.data();
  const std::int64_t n = output_.numel();
  for (std::int64_t i = 0; i < n; ++i) g[i] = go[i] * (1.0f - t[i] * t[i]);
  return grad;
}

}  // namespace wm::nn

#include "nn/layers/maxpool2d.hpp"

#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "common/threadpool.hpp"

namespace wm::nn {

MaxPool2d::MaxPool2d(std::int64_t window) : window_(window) {
  WM_CHECK(window > 0, "pool window must be positive");
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  WM_TRACE_SCOPE("maxpool2d.fwd");
  WM_COUNTER_INC("wm_nn_maxpool2d_forward_total", "MaxPool2d forward passes");
  WM_CHECK_SHAPE(input.rank() == 4, "MaxPool2d expects (N,C,H,W), got ",
                 input.shape().to_string());
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  WM_CHECK_SHAPE(h % window_ == 0 && w % window_ == 0,
                 "MaxPool2d needs H, W divisible by ", window_, ", got ",
                 input.shape().to_string());
  const std::int64_t oh = h / window_;
  const std::int64_t ow = w / window_;

  Tensor out(Shape{n, c, oh, ow});
  // The argmax map is only needed by backward; eval-mode forward skips it so
  // concurrent inference calls share the layer without mutating it.
  if (training) {
    input_shape_ = input.shape();
    argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  }

  const float* in = input.data();
  float* po = out.data();
  const std::int64_t out_plane = oh * ow;
  // Planes (one image x channel each) are independent; fan out across the
  // pool. Output and argmax writes are disjoint per plane.
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(n * c), [&](std::size_t p) {
        const std::int64_t plane = static_cast<std::int64_t>(p) * h * w;
        std::int64_t out_idx = static_cast<std::int64_t>(p) * out_plane;
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t x = 0; x < ow; ++x, ++out_idx) {
            float best = -std::numeric_limits<float>::infinity();
            std::int64_t best_idx = -1;
            for (std::int64_t dy = 0; dy < window_; ++dy) {
              const std::int64_t iy = y * window_ + dy;
              for (std::int64_t dx = 0; dx < window_; ++dx) {
                const std::int64_t ix = x * window_ + dx;
                const std::int64_t idx = plane + iy * w + ix;
                if (in[idx] > best) {
                  best = in[idx];
                  best_idx = idx;
                }
              }
            }
            po[out_idx] = best;
            if (training) {
              argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
            }
          }
        }
      });
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  WM_TRACE_SCOPE("maxpool2d.bwd");
  WM_COUNTER_INC("wm_nn_maxpool2d_backward_total", "MaxPool2d backward passes");
  WM_CHECK_SHAPE(grad_output.numel() ==
                     static_cast<std::int64_t>(argmax_.size()),
                 "MaxPool2d backward called before training forward or shape "
                 "mismatch");
  Tensor grad_input(input_shape_);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  // Every output element's argmax lies inside its own input plane, so
  // splitting on planes keeps the scatter writes disjoint.
  const std::int64_t planes = input_shape_.dim(0) * input_shape_.dim(1);
  const std::size_t per_plane = argmax_.size() / static_cast<std::size_t>(planes);
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(planes), [&](std::size_t p) {
        const std::size_t lo = p * per_plane;
        const std::size_t hi = lo + per_plane;
        for (std::size_t o = lo; o < hi; ++o) {
          gi[argmax_[o]] += go[static_cast<std::int64_t>(o)];
        }
      });
  return grad_input;
}

std::string MaxPool2d::name() const {
  std::ostringstream os;
  os << "MaxPool2d(" << window_ << "x" << window_ << ")";
  return os.str();
}

}  // namespace wm::nn

#include "nn/layers/conv_transpose2d.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace wm::nn {

ConvTranspose2d::ConvTranspose2d(const ConvTranspose2dOptions& opts, Rng& rng)
    : opts_(opts),
      weight_("convT.weight",
              Tensor(Shape{opts.in_channels,
                           opts.out_channels * opts.kernel * opts.kernel})),
      bias_("convT.bias", Tensor(Shape{opts.out_channels})) {
  WM_CHECK(opts.in_channels > 0 && opts.out_channels > 0 && opts.kernel > 0 &&
               opts.stride > 0 && opts.pad >= 0,
           "bad ConvTranspose2d options");
  he_normal(weight_.value, opts.in_channels * opts.kernel * opts.kernel, rng);
}

std::int64_t ConvTranspose2d::out_size(std::int64_t in_size) const {
  return (in_size - 1) * opts_.stride + opts_.kernel - 2 * opts_.pad;
}

ConvGeometry ConvTranspose2d::geometry(std::int64_t out_h, std::int64_t out_w) const {
  // The "image" of this geometry is the *output* of the transposed conv,
  // mirroring the forward geometry of the matching Conv2d.
  ConvGeometry g{.channels = opts_.out_channels, .height = out_h,
                 .width = out_w, .kernel_h = opts_.kernel,
                 .kernel_w = opts_.kernel, .stride = opts_.stride,
                 .pad = opts_.pad};
  g.validate();
  return g;
}

Tensor ConvTranspose2d::forward(const Tensor& input, bool training) {
  WM_TRACE_SCOPE("conv_transpose2d.fwd");
  WM_COUNTER_INC("wm_nn_conv_transpose2d_forward_total", "ConvTranspose2d forward passes");
  WM_CHECK_SHAPE(input.rank() == 4 && input.dim(1) == opts_.in_channels,
                 "ConvTranspose2d expects (N, ", opts_.in_channels,
                 ", H, W), got ", input.shape().to_string());
  if (training) input_ = input;
  const std::int64_t n = input.dim(0);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t oh = out_size(h);
  const std::int64_t ow = out_size(w);
  WM_CHECK_SHAPE(oh > 0 && ow > 0, "ConvTranspose2d produces empty output");
  const ConvGeometry g = geometry(oh, ow);
  WM_CHECK_SHAPE(g.out_h() == h && g.out_w() == w,
                 "inconsistent transpose geometry (stride/pad/kernel mismatch)");

  const std::int64_t spatial = h * w;  // col_cols of g
  const std::int64_t in_image = opts_.in_channels * spatial;
  const std::int64_t out_image = opts_.out_channels * oh * ow;
  const std::size_t col_size =
      static_cast<std::size_t>(g.col_rows() * g.col_cols());
  Tensor out(Shape{n, opts_.out_channels, oh, ow});

  ThreadPool::global().parallel_chunks(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t /*slot*/) {
        std::vector<float> col(col_size);
        for (std::size_t ii = lo; ii < hi; ++ii) {
          const std::int64_t i = static_cast<std::int64_t>(ii);
          // col (OC*K*K x spatial) = W^T (OC*K*K x IC) * X_i (IC x spatial)
          sgemm_at(g.col_rows(), spatial, opts_.in_channels, 1.0f,
                   weight_.value.data(), input.data() + i * in_image, 0.0f,
                   col.data());
          float* oimg = out.data() + i * out_image;
          // `out` is zeroed at construction, but this layer may run twice on
          // the same tensor storage only if reused; keep the explicit clear.
          for (std::int64_t z = 0; z < out_image; ++z) oimg[z] = 0.0f;
          col2im(g, col.data(), oimg);
          const float* b = bias_.value.data();
          for (std::int64_t oc = 0; oc < opts_.out_channels; ++oc) {
            float* chan = oimg + oc * oh * ow;
            for (std::int64_t s = 0; s < oh * ow; ++s) chan[s] += b[oc];
          }
        }
      });
  return out;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  WM_TRACE_SCOPE("conv_transpose2d.bwd");
  WM_COUNTER_INC("wm_nn_conv_transpose2d_backward_total", "ConvTranspose2d backward passes");
  const std::int64_t n = input_.dim(0);
  const std::int64_t h = input_.dim(2);
  const std::int64_t w = input_.dim(3);
  const std::int64_t oh = out_size(h);
  const std::int64_t ow = out_size(w);
  WM_CHECK_SHAPE(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                     grad_output.dim(1) == opts_.out_channels &&
                     grad_output.dim(2) == oh && grad_output.dim(3) == ow,
                 "ConvTranspose2d backward shape mismatch: got ",
                 grad_output.shape().to_string());
  const ConvGeometry g = geometry(oh, ow);
  const std::int64_t spatial = h * w;
  const std::int64_t in_image = opts_.in_channels * spatial;
  const std::int64_t out_image = opts_.out_channels * oh * ow;

  Tensor grad_input(input_.shape());
  const std::size_t col_size =
      static_cast<std::size_t>(g.col_rows() * g.col_cols());

  // Per-chunk dW/db accumulators, reduced in slot order; slot 0 writes the
  // parameter gradients directly so a single chunk keeps the serial
  // accumulation order bit-for-bit (see Conv2d::backward).
  ThreadPool& pool = ThreadPool::global();
  const std::size_t chunks = pool.chunk_count(static_cast<std::size_t>(n));
  const std::size_t wsize = static_cast<std::size_t>(weight_.grad.numel());
  const std::size_t bsize = static_cast<std::size_t>(bias_.grad.numel());
  std::vector<float> dw_slots(chunks > 1 ? (chunks - 1) * wsize : 0, 0.0f);
  std::vector<float> db_slots(chunks > 1 ? (chunks - 1) * bsize : 0, 0.0f);

  pool.parallel_chunks(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        float* dw = slot == 0 ? weight_.grad.data()
                              : dw_slots.data() + (slot - 1) * wsize;
        float* db = slot == 0 ? bias_.grad.data()
                              : db_slots.data() + (slot - 1) * bsize;
        std::vector<float> col(col_size);
        for (std::size_t ii = lo; ii < hi; ++ii) {
          const std::int64_t i = static_cast<std::int64_t>(ii);
          const float* dy = grad_output.data() + i * out_image;
          // col = im2col(dY_i) over the output geometry.
          im2col(g, dy, col.data());
          // dX_i (IC x spatial) = W (IC x OC*K*K) * col (OC*K*K x spatial)
          sgemm(opts_.in_channels, spatial, g.col_rows(), 1.0f,
                weight_.value.data(), col.data(), 0.0f,
                grad_input.data() + i * in_image);
          // dW (IC x OC*K*K) += X_i (IC x spatial) * col^T (spatial x OC*K*K)
          sgemm_bt(opts_.in_channels, g.col_rows(), spatial, 1.0f,
                   input_.data() + i * in_image, col.data(), 1.0f, dw);
          // db += per-output-channel sums of dY
          for (std::int64_t oc = 0; oc < opts_.out_channels; ++oc) {
            const float* chan = dy + oc * oh * ow;
            float acc = 0.0f;
            for (std::int64_t s = 0; s < oh * ow; ++s) acc += chan[s];
            db[oc] += acc;
          }
        }
      });

  for (std::size_t slot = 1; slot < chunks; ++slot) {
    const float* dw = dw_slots.data() + (slot - 1) * wsize;
    const float* db = db_slots.data() + (slot - 1) * bsize;
    float* wgrad = weight_.grad.data();
    float* bgrad = bias_.grad.data();
    for (std::size_t i = 0; i < wsize; ++i) wgrad[i] += dw[i];
    for (std::size_t i = 0; i < bsize; ++i) bgrad[i] += db[i];
  }
  return grad_input;
}

std::string ConvTranspose2d::name() const {
  std::ostringstream os;
  os << "ConvTranspose2d(" << opts_.in_channels << " -> " << opts_.out_channels
     << ", k=" << opts_.kernel << ", s=" << opts_.stride << ", p=" << opts_.pad
     << ")";
  return os.str();
}

}  // namespace wm::nn

// Max pooling over (N, C, H, W) with square window == stride (the paper's
// pools are all 2x2 / stride 2).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace wm::nn {

class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(std::int64_t window);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;

 private:
  std::int64_t window_;
  Shape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

}  // namespace wm::nn

#include "nn/layers/dropout.hpp"

#include "common/error.hpp"
#include "tensor/tensor_ops.hpp"

namespace wm::nn {

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(rng.fork()) {
  WM_CHECK(p >= 0.0 && p < 1.0, "dropout p must be in [0,1), got ", p);
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  // Eval-mode forward must not touch members — concurrent inference calls
  // share this layer. Backward is only valid after a training forward.
  if (!training) return input;
  if (p_ == 0.0) {
    used_mask_ = false;
    return input;
  }
  used_mask_ = true;
  mask_ = Tensor(input.shape());
  const float keep_inv = static_cast<float>(1.0 / (1.0 - p_));
  float* m = mask_.data();
  for (std::int64_t i = 0; i < mask_.numel(); ++i) {
    m[i] = rng_.bernoulli(p_) ? 0.0f : keep_inv;
  }
  return mul(input, mask_);
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!used_mask_) return grad_output;
  WM_CHECK_SHAPE(grad_output.same_shape(mask_), "Dropout backward shape mismatch");
  return mul(grad_output, mask_);
}

}  // namespace wm::nn

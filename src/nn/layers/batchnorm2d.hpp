// Batch normalisation over (N, C, H, W): per-channel statistics across the
// batch and spatial dimensions, learnable scale/shift, running statistics
// for inference.
#pragma once

#include "nn/module.hpp"

namespace wm::nn {

struct BatchNorm2dOptions {
  std::int64_t channels = 0;
  double eps = 1e-5;
  double momentum = 0.1;  // running-stats update rate
};

class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(const BatchNorm2dOptions& opts);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  BatchNorm2dOptions opts_;
  Parameter gamma_;  // (C), initialised to 1
  Parameter beta_;   // (C), initialised to 0
  Tensor running_mean_;  // (C)
  Tensor running_var_;   // (C)

  // Caches from the last training forward.
  Tensor normalized_;          // x_hat
  std::vector<float> inv_std_; // per channel
  bool trained_forward_ = false;
};

}  // namespace wm::nn

// Element-wise activation layers: ReLU, Sigmoid, Tanh.
#pragma once

#include "nn/module.hpp"

namespace wm::nn {

class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_;  // cached for the mask
};

class Sigmoid final : public Module {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor output_;  // sigma(x); derivative is sigma*(1-sigma)
};

class Tanh final : public Module {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;
};

}  // namespace wm::nn

// Fully-connected layer: Y = X W^T + b.
#pragma once

#include "nn/module.hpp"

namespace wm {
class Rng;
}

namespace wm::nn {

class Linear final : public Module {
 public:
  /// Weights are He-initialised; bias starts at zero.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  Tensor input_;      // cached (N, in)
};

}  // namespace wm::nn

// Nearest-neighbour upsampling by an integer factor; the decoder half of the
// convolutional auto-encoder (Fig 3) uses this to mirror 2x2 max-pooling.
#pragma once

#include "nn/module.hpp"

namespace wm::nn {

class Upsample2d final : public Module {
 public:
  explicit Upsample2d(std::int64_t factor);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;

 private:
  std::int64_t factor_;
  Shape input_shape_;
};

}  // namespace wm::nn

#include "nn/layers/conv2d.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace wm::nn {

Conv2d::Conv2d(const Conv2dOptions& opts, Rng& rng)
    : opts_(opts),
      weight_("conv.weight",
              Tensor(Shape{opts.out_channels,
                           opts.in_channels * opts.kernel * opts.kernel})),
      bias_("conv.bias", Tensor(Shape{opts.out_channels})) {
  WM_CHECK(opts.in_channels > 0 && opts.out_channels > 0 && opts.kernel > 0 &&
               opts.stride > 0 && opts.pad >= 0,
           "bad Conv2d options");
  he_normal(weight_.value, opts.in_channels * opts.kernel * opts.kernel, rng);
}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g{.channels = opts_.in_channels, .height = h, .width = w,
                 .kernel_h = opts_.kernel, .kernel_w = opts_.kernel,
                 .stride = opts_.stride, .pad = opts_.pad};
  g.validate();
  return g;
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  WM_CHECK_SHAPE(input.rank() == 4 && input.dim(1) == opts_.in_channels,
                 "Conv2d expects (N, ", opts_.in_channels, ", H, W), got ",
                 input.shape().to_string());
  input_ = input;
  const std::int64_t n = input.dim(0);
  const ConvGeometry g = geometry(input.dim(2), input.dim(3));
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t spatial = oh * ow;
  const std::int64_t in_image = input.dim(1) * input.dim(2) * input.dim(3);
  const std::int64_t out_image = opts_.out_channels * spatial;

  Tensor out(Shape{n, opts_.out_channels, oh, ow});
  col_.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  for (std::int64_t i = 0; i < n; ++i) {
    im2col(g, input.data() + i * in_image, col_.data());
    // out_i (OC x spatial) = W (OC x IC*K*K) * col (IC*K*K x spatial)
    sgemm(opts_.out_channels, spatial, g.col_rows(), 1.0f, weight_.value.data(),
          col_.data(), 0.0f, out.data() + i * out_image);
    float* oimg = out.data() + i * out_image;
    const float* b = bias_.value.data();
    for (std::int64_t oc = 0; oc < opts_.out_channels; ++oc) {
      float* chan = oimg + oc * spatial;
      for (std::int64_t s = 0; s < spatial; ++s) chan[s] += b[oc];
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::int64_t n = input_.dim(0);
  const ConvGeometry g = geometry(input_.dim(2), input_.dim(3));
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t spatial = oh * ow;
  WM_CHECK_SHAPE(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                     grad_output.dim(1) == opts_.out_channels &&
                     grad_output.dim(2) == oh && grad_output.dim(3) == ow,
                 "Conv2d backward shape mismatch: got ",
                 grad_output.shape().to_string());

  const std::int64_t in_image = input_.dim(1) * input_.dim(2) * input_.dim(3);
  const std::int64_t out_image = opts_.out_channels * spatial;
  Tensor grad_input(input_.shape());
  std::vector<float> dcol(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  col_.resize(static_cast<std::size_t>(g.col_rows() * g.col_cols()));

  for (std::int64_t i = 0; i < n; ++i) {
    const float* dy = grad_output.data() + i * out_image;
    // dW (OC x R) += dY_i (OC x spatial) * col_i^T (spatial x R)
    im2col(g, input_.data() + i * in_image, col_.data());
    sgemm_bt(opts_.out_channels, g.col_rows(), spatial, 1.0f, dy, col_.data(),
             1.0f, weight_.grad.data());
    // db += per-channel sums of dY
    float* db = bias_.grad.data();
    for (std::int64_t oc = 0; oc < opts_.out_channels; ++oc) {
      const float* chan = dy + oc * spatial;
      float acc = 0.0f;
      for (std::int64_t s = 0; s < spatial; ++s) acc += chan[s];
      db[oc] += acc;
    }
    // dcol (R x spatial) = W^T (R x OC) * dY_i (OC x spatial)
    sgemm_at(g.col_rows(), spatial, opts_.out_channels, 1.0f,
             weight_.value.data(), dy, 0.0f, dcol.data());
    col2im(g, dcol.data(), grad_input.data() + i * in_image);
  }
  return grad_input;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << opts_.in_channels << " -> " << opts_.out_channels << ", k="
     << opts_.kernel << ", s=" << opts_.stride << ", p=" << opts_.pad << ")";
  return os.str();
}

}  // namespace wm::nn

#include "nn/layers/conv2d.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace wm::nn {

Conv2d::Conv2d(const Conv2dOptions& opts, Rng& rng)
    : opts_(opts),
      weight_("conv.weight",
              Tensor(Shape{opts.out_channels,
                           opts.in_channels * opts.kernel * opts.kernel})),
      bias_("conv.bias", Tensor(Shape{opts.out_channels})) {
  WM_CHECK(opts.in_channels > 0 && opts.out_channels > 0 && opts.kernel > 0 &&
               opts.stride > 0 && opts.pad >= 0,
           "bad Conv2d options");
  he_normal(weight_.value, opts.in_channels * opts.kernel * opts.kernel, rng);
}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g{.channels = opts_.in_channels, .height = h, .width = w,
                 .kernel_h = opts_.kernel, .kernel_w = opts_.kernel,
                 .stride = opts_.stride, .pad = opts_.pad};
  g.validate();
  return g;
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  WM_TRACE_SCOPE("conv2d.fwd");
  WM_COUNTER_INC("wm_nn_conv2d_forward_total", "Conv2d forward passes");
  WM_CHECK_SHAPE(input.rank() == 4 && input.dim(1) == opts_.in_channels,
                 "Conv2d expects (N, ", opts_.in_channels, ", H, W), got ",
                 input.shape().to_string());
  if (training) input_ = input;
  const std::int64_t n = input.dim(0);
  const ConvGeometry g = geometry(input.dim(2), input.dim(3));
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t spatial = oh * ow;
  const std::int64_t in_image = input.dim(1) * input.dim(2) * input.dim(3);
  const std::int64_t out_image = opts_.out_channels * spatial;
  const std::size_t col_size =
      static_cast<std::size_t>(g.col_rows() * g.col_cols());

  Tensor out(Shape{n, opts_.out_channels, oh, ow});
  ThreadPool::global().parallel_chunks(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t /*slot*/) {
        std::vector<float> col(col_size);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int64_t img = static_cast<std::int64_t>(i);
          im2col(g, input.data() + img * in_image, col.data());
          // out_i (OC x spatial) = W (OC x IC*K*K) * col (IC*K*K x spatial),
          // with the per-channel bias folded into the GEMM epilogue.
          sgemm_bias_rows(opts_.out_channels, spatial, g.col_rows(), 1.0f,
                          weight_.value.data(), col.data(), 0.0f,
                          out.data() + img * out_image, bias_.value.data());
        }
      });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  WM_TRACE_SCOPE("conv2d.bwd");
  WM_COUNTER_INC("wm_nn_conv2d_backward_total", "Conv2d backward passes");
  const std::int64_t n = input_.dim(0);
  const ConvGeometry g = geometry(input_.dim(2), input_.dim(3));
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t spatial = oh * ow;
  WM_CHECK_SHAPE(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                     grad_output.dim(1) == opts_.out_channels &&
                     grad_output.dim(2) == oh && grad_output.dim(3) == ow,
                 "Conv2d backward shape mismatch: got ",
                 grad_output.shape().to_string());

  const std::int64_t in_image = input_.dim(1) * input_.dim(2) * input_.dim(3);
  const std::int64_t out_image = opts_.out_channels * spatial;
  const std::size_t col_size =
      static_cast<std::size_t>(g.col_rows() * g.col_cols());
  Tensor grad_input(input_.shape());

  // Each image of a chunk contributes, in batch order, to that chunk's
  // private dW/db accumulators (slot 0 accumulates straight into the
  // parameter gradients, so a single chunk reproduces the serial order
  // bit-for-bit); the remaining slots are reduced in slot order below.
  ThreadPool& pool = ThreadPool::global();
  const std::size_t chunks = pool.chunk_count(static_cast<std::size_t>(n));
  const std::size_t wsize = static_cast<std::size_t>(weight_.grad.numel());
  const std::size_t bsize = static_cast<std::size_t>(bias_.grad.numel());
  std::vector<float> dw_slots(chunks > 1 ? (chunks - 1) * wsize : 0, 0.0f);
  std::vector<float> db_slots(chunks > 1 ? (chunks - 1) * bsize : 0, 0.0f);

  pool.parallel_chunks(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t slot) {
        float* dw = slot == 0 ? weight_.grad.data()
                              : dw_slots.data() + (slot - 1) * wsize;
        float* db = slot == 0 ? bias_.grad.data()
                              : db_slots.data() + (slot - 1) * bsize;
        std::vector<float> col(col_size);
        std::vector<float> dcol(col_size);
        for (std::size_t ii = lo; ii < hi; ++ii) {
          const std::int64_t i = static_cast<std::int64_t>(ii);
          const float* dy = grad_output.data() + i * out_image;
          // dW (OC x R) += dY_i (OC x spatial) * col_i^T (spatial x R)
          im2col(g, input_.data() + i * in_image, col.data());
          sgemm_bt(opts_.out_channels, g.col_rows(), spatial, 1.0f, dy,
                   col.data(), 1.0f, dw);
          // db += per-channel sums of dY
          for (std::int64_t oc = 0; oc < opts_.out_channels; ++oc) {
            const float* chan = dy + oc * spatial;
            float acc = 0.0f;
            for (std::int64_t s = 0; s < spatial; ++s) acc += chan[s];
            db[oc] += acc;
          }
          // dcol (R x spatial) = W^T (R x OC) * dY_i (OC x spatial)
          sgemm_at(g.col_rows(), spatial, opts_.out_channels, 1.0f,
                   weight_.value.data(), dy, 0.0f, dcol.data());
          col2im(g, dcol.data(), grad_input.data() + i * in_image);
        }
      });

  for (std::size_t slot = 1; slot < chunks; ++slot) {
    const float* dw = dw_slots.data() + (slot - 1) * wsize;
    const float* db = db_slots.data() + (slot - 1) * bsize;
    float* wgrad = weight_.grad.data();
    float* bgrad = bias_.grad.data();
    for (std::size_t i = 0; i < wsize; ++i) wgrad[i] += dw[i];
    for (std::size_t i = 0; i < bsize; ++i) bgrad[i] += db[i];
  }
  return grad_input;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << opts_.in_channels << " -> " << opts_.out_channels << ", k="
     << opts_.kernel << ", s=" << opts_.stride << ", p=" << opts_.pad << ")";
  return os.str();
}

}  // namespace wm::nn

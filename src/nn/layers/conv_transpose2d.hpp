// Transposed convolution ("deconvolution") over (N, C, H, W) batches.
//
// Forward is exactly the data-gradient of a Conv2d with the same geometry:
// output height = (H - 1) * stride + K - 2 * pad.
#pragma once

#include <vector>

#include "nn/module.hpp"
#include "tensor/im2col.hpp"

namespace wm {
class Rng;
}

namespace wm::nn {

struct ConvTranspose2dOptions {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
};

class ConvTranspose2d final : public Module {
 public:
  ConvTranspose2d(const ConvTranspose2dOptions& opts, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override;

  /// Output spatial size for a given input size.
  std::int64_t out_size(std::int64_t in_size) const;

 private:
  ConvGeometry geometry(std::int64_t out_h, std::int64_t out_w) const;

  ConvTranspose2dOptions opts_;
  Parameter weight_;  // (IC, OC*K*K)
  Parameter bias_;    // (OC)
  Tensor input_;      // cached, training forward only
};

}  // namespace wm::nn

#include "nn/layers/upsample2d.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/threadpool.hpp"

namespace wm::nn {

Upsample2d::Upsample2d(std::int64_t factor) : factor_(factor) {
  WM_CHECK(factor > 0, "upsample factor must be positive");
}

Tensor Upsample2d::forward(const Tensor& input, bool training) {
  WM_CHECK_SHAPE(input.rank() == 4, "Upsample2d expects (N,C,H,W), got ",
                 input.shape().to_string());
  if (training) input_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  const std::int64_t oh = h * factor_;
  const std::int64_t ow = w * factor_;
  Tensor out(Shape{n, c, oh, ow});
  const float* in = input.data();
  float* po = out.data();
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(n * c), [&](std::size_t p) {
        const std::int64_t plane = static_cast<std::int64_t>(p);
        const float* ip = in + plane * h * w;
        float* op = po + plane * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const float* irow = ip + (y / factor_) * w;
          float* orow = op + y * ow;
          for (std::int64_t x = 0; x < ow; ++x) orow[x] = irow[x / factor_];
        }
      });
  return out;
}

Tensor Upsample2d::backward(const Tensor& grad_output) {
  const std::int64_t n = input_shape_.dim(0);
  const std::int64_t c = input_shape_.dim(1);
  const std::int64_t h = input_shape_.dim(2);
  const std::int64_t w = input_shape_.dim(3);
  WM_CHECK_SHAPE(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                     grad_output.dim(1) == c &&
                     grad_output.dim(2) == h * factor_ &&
                     grad_output.dim(3) == w * factor_,
                 "Upsample2d backward shape mismatch: got ",
                 grad_output.shape().to_string());
  Tensor grad_input(input_shape_);
  const float* go = grad_output.data();
  float* gi = grad_input.data();
  const std::int64_t oh = h * factor_;
  const std::int64_t ow = w * factor_;
  // Each plane scatters only into its own input plane, so the plane split
  // keeps the += writes disjoint.
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(n * c), [&](std::size_t p) {
        const std::int64_t plane = static_cast<std::int64_t>(p);
        const float* gp = go + plane * oh * ow;
        float* ip = gi + plane * h * w;
        for (std::int64_t y = 0; y < oh; ++y) {
          const float* grow = gp + y * ow;
          float* irow = ip + (y / factor_) * w;
          for (std::int64_t x = 0; x < ow; ++x) irow[x / factor_] += grow[x];
        }
      });
  return grad_input;
}

std::string Upsample2d::name() const {
  std::ostringstream os;
  os << "Upsample2d(x" << factor_ << ")";
  return os.str();
}

}  // namespace wm::nn

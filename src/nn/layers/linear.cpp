#include "nn/layers/linear.hpp"

#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace wm::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("linear.weight", Tensor(Shape{out_features, in_features})),
      bias_("linear.bias", Tensor(Shape{out_features})) {
  WM_CHECK(in_features > 0 && out_features > 0, "Linear needs positive sizes");
  he_normal(weight_.value, in_features, rng);
}

Tensor Linear::forward(const Tensor& input, bool training) {
  WM_TRACE_SCOPE("linear.fwd");
  WM_COUNTER_INC("wm_nn_linear_forward_total", "Linear forward passes");
  WM_CHECK_SHAPE(input.rank() == 2 && input.dim(1) == in_features_,
                 "Linear expects (N, ", in_features_, "), got ",
                 input.shape().to_string());
  if (training) input_ = input;
  const std::int64_t n = input.dim(0);
  Tensor out(Shape{n, out_features_});
  // Y = X (N x in) * W^T (in x out), bias folded into the GEMM epilogue.
  sgemm_bt_bias_cols(n, out_features_, in_features_, 1.0f, input.data(),
                     weight_.value.data(), 0.0f, out.data(),
                     bias_.value.data());
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  WM_TRACE_SCOPE("linear.bwd");
  WM_COUNTER_INC("wm_nn_linear_backward_total", "Linear backward passes");
  const std::int64_t n = input_.dim(0);
  WM_CHECK_SHAPE(grad_output.rank() == 2 && grad_output.dim(0) == n &&
                     grad_output.dim(1) == out_features_,
                 "Linear backward expects (N, ", out_features_, "), got ",
                 grad_output.shape().to_string());
  // dW (out x in) += dY^T (out x N) * X (N x in)
  sgemm_at(out_features_, in_features_, n, 1.0f, grad_output.data(),
           input_.data(), 1.0f, weight_.grad.data());
  // db += column sums of dY
  float* db = bias_.grad.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = grad_output.data() + i * out_features_;
    for (std::int64_t j = 0; j < out_features_; ++j) db[j] += row[j];
  }
  // dX (N x in) = dY (N x out) * W (out x in)
  Tensor grad_input(Shape{n, in_features_});
  sgemm(n, in_features_, out_features_, 1.0f, grad_output.data(),
        weight_.value.data(), 0.0f, grad_input.data());
  return grad_input;
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_features_ << " -> " << out_features_ << ")";
  return os.str();
}

}  // namespace wm::nn

// Flattens (N, C, H, W) (or any rank >= 2) into (N, rest).
#pragma once

#include "nn/module.hpp"

namespace wm::nn {

class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

}  // namespace wm::nn

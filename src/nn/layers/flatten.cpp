#include "nn/layers/flatten.hpp"

#include "common/error.hpp"

namespace wm::nn {

Tensor Flatten::forward(const Tensor& input, bool training) {
  WM_CHECK_SHAPE(input.rank() >= 2, "Flatten needs rank >= 2, got ",
                 input.shape().to_string());
  if (training) input_shape_ = input.shape();
  const std::int64_t n = input.dim(0);
  const std::int64_t rest = n > 0 ? input.numel() / n : 0;
  return input.reshape(Shape{n, rest});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  WM_CHECK_SHAPE(grad_output.numel() == input_shape_.numel(),
                 "Flatten backward numel mismatch");
  return grad_output.reshape(input_shape_);
}

}  // namespace wm::nn

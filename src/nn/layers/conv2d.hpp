// 2-D convolution over (N, C, H, W) batches, lowered to GEMM via im2col.
//
// The batch loop fans out across ThreadPool::global(); every chunk owns its
// im2col scratch (and, in backward, its own dW/db accumulators), so forward
// in eval mode is reentrant and the layer is safe to call concurrently from
// the selective predictor. The input cache needed by backward is only
// captured when training.
#pragma once

#include "nn/module.hpp"
#include "tensor/im2col.hpp"

namespace wm {
class Rng;
}

namespace wm::nn {

struct Conv2dOptions {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;   // square kernels (the paper uses 5x5 / 3x3)
  std::int64_t stride = 1;
  std::int64_t pad = 0;      // use kernel/2 for 'same' output at stride 1
};

class Conv2d final : public Module {
 public:
  Conv2d(const Conv2dOptions& opts, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override;

  const Conv2dOptions& options() const { return opts_; }

 private:
  ConvGeometry geometry(std::int64_t h, std::int64_t w) const;

  Conv2dOptions opts_;
  Parameter weight_;  // (OC, IC*K*K)
  Parameter bias_;    // (OC)
  Tensor input_;      // cached (N, C, H, W), training forward only
};

}  // namespace wm::nn

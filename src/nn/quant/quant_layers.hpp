// Inference-only quantized siblings of Conv2d and Linear, built on the
// fused i8gemm kernels. Float tensors in, float tensors out: each forward
// dynamically quantizes its input per-sample, runs the integer product and
// dequantizes in the GEMM epilogue (optionally fusing the following ReLU),
// so these drop into a float network at layer boundaries. Per-sample (not
// per-batch) activation ranges keep every sample's output independent of
// what it was batched with — the wm::Classifier contract.
//
// There is no backward — quantized layers serve the predictor hot path
// only; training stays fp32. Forwards are const and reentrant (scratch is
// local), matching the Classifier thread-safety contract.
#pragma once

#include "nn/layers/conv2d.hpp"
#include "nn/quant/quantize.hpp"

namespace wm::nn::quant {

/// Quantized convolution over (N, C, H, W), lowered to i8gemm via u8
/// im2col. Weights are per-output-channel symmetric int8; BatchNorm, when
/// present in the source net, is folded into weights and bias before
/// quantization (see fold_batchnorm).
class QuantConv2d {
 public:
  /// Quantizes float weights (OC x IC·K·K) and copies the float bias (OC).
  QuantConv2d(const Conv2dOptions& opts, const Tensor& weight,
              const Tensor& bias, bool fuse_relu);

  /// Adopts pre-quantized weights (model-file load path). row_sums may be
  /// empty; they are recomputed.
  QuantConv2d(const Conv2dOptions& opts, QuantizedWeights qw, Tensor bias,
              bool fuse_relu);

  Tensor forward(const Tensor& input) const;

  const Conv2dOptions& options() const { return opts_; }
  const QuantizedWeights& weights() const { return qw_; }
  const Tensor& bias() const { return bias_; }
  bool fused_relu() const { return relu_; }

 private:
  Conv2dOptions opts_;
  QuantizedWeights qw_;
  Tensor bias_;
  bool relu_;
};

/// Quantized fully-connected layer: Y = X Wᵀ + b over i8gemm_bt_bias_cols.
class QuantLinear {
 public:
  /// Quantizes float weights (out x in) and copies the float bias (out).
  QuantLinear(const Tensor& weight, const Tensor& bias, bool fuse_relu);

  /// Adopts pre-quantized weights (model-file load path).
  QuantLinear(QuantizedWeights qw, Tensor bias, bool fuse_relu);

  Tensor forward(const Tensor& input) const;

  std::int64_t in_features() const { return qw_.cols; }
  std::int64_t out_features() const { return qw_.rows; }
  const QuantizedWeights& weights() const { return qw_; }
  const Tensor& bias() const { return bias_; }
  bool fused_relu() const { return relu_; }

 private:
  QuantizedWeights qw_;  // (out x in), rows are output features
  Tensor bias_;
  bool relu_;
};

}  // namespace wm::nn::quant

#include "nn/quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace wm::nn::quant {

namespace {

/// Round-half-away-from-zero, the deterministic rounding every quantizer
/// here uses (no dependence on the FP environment's rounding mode).
std::int32_t round_i32(float v) {
  return static_cast<std::int32_t>(std::lround(v));
}

}  // namespace

QuantizedWeights quantize_weights_per_channel(const Tensor& w) {
  WM_CHECK_SHAPE(w.rank() == 2, "quantize_weights_per_channel needs a rank-2 "
                 "(out_channels x k) matrix, got ", w.shape().to_string());
  QuantizedWeights qw;
  qw.rows = w.dim(0);
  qw.cols = w.dim(1);
  qw.q.resize(static_cast<std::size_t>(qw.rows * qw.cols));
  qw.scales.resize(static_cast<std::size_t>(qw.rows));
  for (std::int64_t r = 0; r < qw.rows; ++r) {
    const float* row = w.data() + r * qw.cols;
    float absmax = 0.0f;
    for (std::int64_t k = 0; k < qw.cols; ++k) {
      absmax = std::max(absmax, std::fabs(row[k]));
    }
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    qw.scales[static_cast<std::size_t>(r)] = scale;
    std::int8_t* qrow = qw.q.data() + r * qw.cols;
    for (std::int64_t k = 0; k < qw.cols; ++k) {
      const std::int32_t v =
          std::clamp(round_i32(row[k] / scale), -127, 127);
      qrow[k] = static_cast<std::int8_t>(v);
    }
  }
  refresh_row_sums(qw);
  return qw;
}

Tensor dequantize_weights(const QuantizedWeights& qw) {
  Tensor w(Shape{qw.rows, qw.cols});
  for (std::int64_t r = 0; r < qw.rows; ++r) {
    const float scale = qw.scales[static_cast<std::size_t>(r)];
    const std::int8_t* qrow = qw.q.data() + r * qw.cols;
    float* row = w.data() + r * qw.cols;
    for (std::int64_t k = 0; k < qw.cols; ++k) {
      row[k] = scale * static_cast<float>(qrow[k]);
    }
  }
  return w;
}

void refresh_row_sums(QuantizedWeights& qw) {
  qw.row_sums.assign(static_cast<std::size_t>(qw.rows), 0);
  for (std::int64_t r = 0; r < qw.rows; ++r) {
    const std::int8_t* qrow = qw.q.data() + r * qw.cols;
    std::int32_t acc = 0;
    for (std::int64_t k = 0; k < qw.cols; ++k) acc += qrow[k];
    qw.row_sums[static_cast<std::size_t>(r)] = acc;
  }
}

ActivationQuant choose_activation_quant(const float* x, std::int64_t n) {
  float lo = 0.0f;
  float hi = 0.0f;  // range always includes 0 (see header)
  for (std::int64_t i = 0; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  ActivationQuant aq;
  if (hi == lo) return aq;  // all-zero tensor: scale 1, zero point 0
  aq.scale = (hi - lo) / 127.0f;
  aq.zero_point = std::clamp(round_i32(-lo / aq.scale), 0, 127);
  return aq;
}

void quantize_activations(const float* x, std::int64_t n,
                          const ActivationQuant& aq, std::uint8_t* out) {
  // This runs per sample per layer on the inference fast path, so it must
  // auto-vectorize: round half away from zero via copysign + truncating
  // conversion instead of std::lround (a libm call per element). The
  // pre-clamp keeps the float→int conversion in range — out-of-range
  // cvttps2dq would yield INT_MIN and saturate to the wrong end.
  const float inv = 1.0f / aq.scale;
  for (std::int64_t i = 0; i < n; ++i) {
    const float v =
        std::min(256.0f, std::max(-256.0f, x[i] * inv));
    const std::int32_t q = static_cast<std::int32_t>(v + std::copysign(0.5f, v));
    out[i] = static_cast<std::uint8_t>(std::clamp(q + aq.zero_point, 0, 127));
  }
}

std::pair<Tensor, Tensor> fold_batchnorm(const Tensor& weight,
                                         const Tensor& bias,
                                         const Tensor& gamma,
                                         const Tensor& beta,
                                         const Tensor& running_mean,
                                         const Tensor& running_var,
                                         double eps) {
  WM_CHECK_SHAPE(weight.rank() == 2, "fold_batchnorm needs (OC x K) weights");
  const std::int64_t oc = weight.dim(0);
  WM_CHECK_SHAPE(bias.numel() == oc && gamma.numel() == oc &&
                     beta.numel() == oc && running_mean.numel() == oc &&
                     running_var.numel() == oc,
                 "fold_batchnorm per-channel size mismatch for ", oc,
                 " channels");
  Tensor w = weight;
  Tensor b = bias;
  const std::int64_t k = weight.dim(1);
  for (std::int64_t c = 0; c < oc; ++c) {
    // Eval-mode BN is the affine map y = g·(x − m)/√(v + eps) + β per
    // channel; compose it with the conv's own affine output.
    const float inv_std = 1.0f / std::sqrt(running_var[c] +
                                           static_cast<float>(eps));
    const float g = gamma[c] * inv_std;
    float* wrow = w.data() + c * k;
    for (std::int64_t i = 0; i < k; ++i) wrow[i] *= g;
    b[c] = (bias[c] - running_mean[c]) * g + beta[c];
  }
  return {std::move(w), std::move(b)};
}

}  // namespace wm::nn::quant

// Quantization vocabulary for the int8 inference fast path (DESIGN.md §12):
// per-output-channel symmetric int8 weights with absmax calibration, dynamic
// per-tensor unsigned-7-bit activations, and inference-time BatchNorm
// folding. These feed the fused i8gemm kernels in tensor/i8gemm.hpp.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace wm::nn::quant {

/// Per-output-channel symmetric int8 weights: row r of the original
/// (rows x cols) float matrix satisfies w(r, k) ≈ scales[r] · q[r*cols + k]
/// with q in [-127, 127]. row_sums carries Σ_k q(r, k), precomputed for the
/// kernel's activation zero-point correction.
struct QuantizedWeights {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int8_t> q;
  std::vector<float> scales;
  std::vector<std::int32_t> row_sums;
};

/// Absmax calibration per output channel (= row): scale = absmax / 127
/// (1 for an all-zero row), q = round(w / scale). Needs no calibration data.
QuantizedWeights quantize_weights_per_channel(const Tensor& w);

/// Reconstructs float weights; round-trip error is ≤ scale/2 per element.
Tensor dequantize_weights(const QuantizedWeights& qw);

/// Recomputes row_sums from q (model files store only q and scales).
void refresh_row_sums(QuantizedWeights& qw);

/// Dynamic per-tensor activation parameters: x ≈ scale · (q − zero_point),
/// q in [0, 127]. The 7-bit range is the i8gemm saturation contract; the
/// calibrated range is always widened to include 0, so the zero point
/// represents real 0.0 exactly (ReLU outputs, conv padding taps).
struct ActivationQuant {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Min/max calibration over n values (range widened to include 0; an
/// all-zero tensor yields scale 1, zero point 0).
ActivationQuant choose_activation_quant(const float* x, std::int64_t n);

/// Quantizes n values with the given parameters (clamped to [0, 127]).
void quantize_activations(const float* x, std::int64_t n,
                          const ActivationQuant& aq, std::uint8_t* out);

/// Folds an inference-mode BatchNorm (per-channel gamma, beta, running
/// mean/var, eps) into the preceding conv's weights and bias — rows of
/// `weight` are output channels — returning the adjusted (weight, bias).
/// Classic pre-quantization step: the folded conv is exactly equivalent to
/// conv→BN in eval mode, and the BN pass disappears from the hot path.
std::pair<Tensor, Tensor> fold_batchnorm(const Tensor& weight,
                                         const Tensor& bias,
                                         const Tensor& gamma,
                                         const Tensor& beta,
                                         const Tensor& running_mean,
                                         const Tensor& running_var, double eps);

}  // namespace wm::nn::quant

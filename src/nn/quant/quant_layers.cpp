#include "nn/quant/quant_layers.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/threadpool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/i8gemm.hpp"
#include "tensor/im2col.hpp"

namespace wm::nn::quant {

namespace {

void check_channel_shapes(const QuantizedWeights& qw, const Tensor& bias) {
  WM_CHECK_SHAPE(bias.numel() == qw.rows, "quantized layer bias size ",
                 bias.numel(), " does not match ", qw.rows,
                 " output channels");
  WM_CHECK(qw.q.size() == static_cast<std::size_t>(qw.rows * qw.cols) &&
               qw.scales.size() == static_cast<std::size_t>(qw.rows),
           "inconsistent quantized weight sizes");
}

}  // namespace

QuantConv2d::QuantConv2d(const Conv2dOptions& opts, const Tensor& weight,
                         const Tensor& bias, bool fuse_relu)
    : QuantConv2d(opts, quantize_weights_per_channel(weight), bias,
                  fuse_relu) {}

QuantConv2d::QuantConv2d(const Conv2dOptions& opts, QuantizedWeights qw,
                         Tensor bias, bool fuse_relu)
    : opts_(opts), qw_(std::move(qw)), bias_(std::move(bias)),
      relu_(fuse_relu) {
  WM_CHECK(opts.in_channels > 0 && opts.out_channels > 0 && opts.kernel > 0 &&
               opts.stride > 0 && opts.pad >= 0,
           "bad QuantConv2d options");
  WM_CHECK_SHAPE(qw_.rows == opts.out_channels &&
                     qw_.cols ==
                         opts.in_channels * opts.kernel * opts.kernel,
                 "QuantConv2d weight shape mismatch");
  check_channel_shapes(qw_, bias_);
  if (qw_.row_sums.size() != static_cast<std::size_t>(qw_.rows)) {
    refresh_row_sums(qw_);
  }
}

Tensor QuantConv2d::forward(const Tensor& input) const {
  WM_TRACE_SCOPE("qconv2d.fwd");
  WM_COUNTER_INC("wm_nn_quant_conv2d_forward_total",
                 "QuantConv2d forward passes");
  WM_CHECK_SHAPE(input.rank() == 4 && input.dim(1) == opts_.in_channels,
                 "QuantConv2d expects (N, ", opts_.in_channels,
                 ", H, W), got ", input.shape().to_string());
  const std::int64_t n = input.dim(0);
  ConvGeometry g{.channels = opts_.in_channels, .height = input.dim(2),
                 .width = input.dim(3), .kernel_h = opts_.kernel,
                 .kernel_w = opts_.kernel, .stride = opts_.stride,
                 .pad = opts_.pad};
  g.validate();
  const std::int64_t spatial = g.col_cols();
  const std::int64_t in_image = input.dim(1) * input.dim(2) * input.dim(3);
  const std::int64_t out_image = opts_.out_channels * spatial;
  const std::size_t col_size =
      static_cast<std::size_t>(g.col_rows() * g.col_cols());

  // Dynamic activation quantization is per image, not per batch: a sample's
  // output must not depend on what it was batched with (the Classifier
  // contract), and per-image ranges are tighter anyway. Each image is
  // quantized, expanded by a u8 im2col (4x less traffic than the float
  // expansion, pad taps = the zero point) and multiplied against the shared
  // int8 weights.
  Tensor out(Shape{n, opts_.out_channels, g.out_h(), g.out_w()});
  ThreadPool::global().parallel_chunks(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi, std::size_t /*slot*/) {
        std::vector<std::uint8_t> qimg(static_cast<std::size_t>(in_image));
        std::vector<std::uint8_t> col(col_size);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int64_t img = static_cast<std::int64_t>(i);
          const float* src = input.data() + img * in_image;
          const ActivationQuant aq = choose_activation_quant(src, in_image);
          quantize_activations(src, in_image, aq, qimg.data());
          im2col_u8(g, qimg.data(), col.data(),
                    static_cast<std::uint8_t>(aq.zero_point));
          I8Epilogue epi;
          epi.channel_scales = qw_.scales.data();
          epi.act_scale = aq.scale;
          epi.act_zero_point = aq.zero_point;
          epi.weight_row_sums = qw_.row_sums.data();
          epi.bias = bias_.data();
          epi.relu = relu_;
          i8gemm_bias_rows(opts_.out_channels, spatial, g.col_rows(),
                           qw_.q.data(), col.data(),
                           out.data() + img * out_image, epi);
        }
      });
  return out;
}

QuantLinear::QuantLinear(const Tensor& weight, const Tensor& bias,
                         bool fuse_relu)
    : QuantLinear(quantize_weights_per_channel(weight), bias, fuse_relu) {}

QuantLinear::QuantLinear(QuantizedWeights qw, Tensor bias, bool fuse_relu)
    : qw_(std::move(qw)), bias_(std::move(bias)), relu_(fuse_relu) {
  check_channel_shapes(qw_, bias_);
  if (qw_.row_sums.size() != static_cast<std::size_t>(qw_.rows)) {
    refresh_row_sums(qw_);
  }
}

Tensor QuantLinear::forward(const Tensor& input) const {
  WM_TRACE_SCOPE("qlinear.fwd");
  WM_COUNTER_INC("wm_nn_quant_linear_forward_total",
                 "QuantLinear forward passes");
  WM_CHECK_SHAPE(input.rank() == 2 && input.dim(1) == qw_.cols,
                 "QuantLinear expects (N, ", qw_.cols, "), got ",
                 input.shape().to_string());
  const std::int64_t n = input.dim(0);
  // Each sample (row) carries its own dynamic quantization — see the
  // per-image rationale in QuantConv2d::forward — threaded through the
  // epilogue's per-row activation parameters so the batch still runs as one
  // GEMM.
  std::vector<std::uint8_t> qin(static_cast<std::size_t>(input.numel()));
  std::vector<float> row_scales(static_cast<std::size_t>(n));
  std::vector<std::int32_t> row_zps(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    const float* src = input.data() + r * qw_.cols;
    const ActivationQuant aq = choose_activation_quant(src, qw_.cols);
    quantize_activations(src, qw_.cols, aq, qin.data() + r * qw_.cols);
    row_scales[static_cast<std::size_t>(r)] = aq.scale;
    row_zps[static_cast<std::size_t>(r)] = aq.zero_point;
  }

  I8Epilogue epi;
  epi.channel_scales = qw_.scales.data();
  epi.weight_row_sums = qw_.row_sums.data();
  epi.bias = bias_.data();
  epi.relu = relu_;
  epi.act_row_scales = row_scales.data();
  epi.act_row_zero_points = row_zps.data();

  Tensor out(Shape{n, qw_.rows});
  i8gemm_bt_bias_cols(n, qw_.rows, qw_.cols, qin.data(), qw_.q.data(),
                      out.data(), epi);
  return out;
}

}  // namespace wm::nn::quant

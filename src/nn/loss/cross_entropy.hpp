// Softmax cross-entropy loss with optional per-sample weights.
//
// The weights implement the paper's synthetic-sample down-weighting: a
// synthetic sample carries weight w < 1 so that misclassifying an original
// sample costs 1/w times more (Section III-B).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace wm::nn {

struct LossResult {
  float value = 0.0f;  // scalar loss
  Tensor grad;         // d(loss)/d(logits), same shape as logits
};

class SoftmaxCrossEntropy {
 public:
  /// Mean weighted cross-entropy over the batch:
  ///   L = (1/N) * sum_i w_i * (-log softmax(logits_i)[y_i])
  /// `weights` may be null (all ones). Labels must be in [0, C).
  static LossResult compute(const Tensor& logits, const std::vector<int>& labels,
                            const std::vector<float>* weights = nullptr);

  /// Per-sample unweighted cross-entropy values.
  static std::vector<float> per_sample(const Tensor& logits,
                                       const std::vector<int>& labels);
};

}  // namespace wm::nn

// SelectiveNet training objective (paper Eqs. 3-9).
//
// Given prediction logits f(x) and selection scores g(x) in (0,1):
//   c(g)        = (1/N) sum_i g_i                       empirical coverage (6)
//   r(f,g)      = sum_i l_i g_i / sum_i g_i             selective risk    (7)
//   L_(f,g)     = r(f,g) + lambda * max(0, c0 - c)^2    coverage-constrained (8)
//   L           = alpha * L_(f,g) + (1-alpha) * r(f)    overall objective (9)
// where l_i is the (optionally weighted) cross-entropy of sample i. The
// (1-alpha) empirical-risk term keeps every training instance visible to the
// network, preventing it from over-fitting a c0-sized subset (Section III-A).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace wm::nn {

struct SelectiveLossOptions {
  double target_coverage = 0.5;  // c0
  double lambda = 0.5;           // coverage-constraint weight (paper: 0.5)
  double alpha = 0.5;            // selective vs empirical mix (paper: 0.5)
};

struct SelectiveLossResult {
  float value = 0.0f;           // total loss L
  float selective_risk = 0.0f;  // r(f,g|D)
  float empirical_risk = 0.0f;  // r(f|D)
  float coverage = 0.0f;        // c(g|D)
  float penalty = 0.0f;         // lambda * Psi(c0 - c)
  Tensor grad_logits;           // dL/d f_logits, (N, C)
  Tensor grad_g;                // dL/d g, (N, 1)
};

class SelectiveLoss {
 public:
  explicit SelectiveLoss(const SelectiveLossOptions& opts);

  /// logits: (N, C); g: (N, 1) selection probabilities in (0, 1); labels in
  /// [0, C); weights (optional) multiply each sample's cross-entropy.
  SelectiveLossResult compute(const Tensor& logits, const Tensor& g,
                              const std::vector<int>& labels,
                              const std::vector<float>* weights = nullptr) const;

  const SelectiveLossOptions& options() const { return opts_; }

 private:
  SelectiveLossOptions opts_;
};

}  // namespace wm::nn

// Mean-squared-error loss (auto-encoder reconstruction objective).
#pragma once

#include "nn/loss/cross_entropy.hpp"  // LossResult
#include "tensor/tensor.hpp"

namespace wm::nn {

class MseLoss {
 public:
  /// L = mean((pred - target)^2) over all elements; grad w.r.t. pred.
  static LossResult compute(const Tensor& pred, const Tensor& target);
};

}  // namespace wm::nn

#include "nn/loss/selective_loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/tensor_ops.hpp"

namespace wm::nn {

namespace {
constexpr float kLogFloor = 1e-12f;
constexpr double kCoverageFloor = 1e-8;  // guards sum(g) == 0
}  // namespace

SelectiveLoss::SelectiveLoss(const SelectiveLossOptions& opts) : opts_(opts) {
  WM_CHECK(opts.target_coverage > 0.0 && opts.target_coverage <= 1.0,
           "target coverage must be in (0,1], got ", opts.target_coverage);
  WM_CHECK(opts.lambda >= 0.0, "lambda must be non-negative");
  WM_CHECK(opts.alpha >= 0.0 && opts.alpha <= 1.0, "alpha must be in [0,1]");
}

SelectiveLossResult SelectiveLoss::compute(const Tensor& logits, const Tensor& g,
                                           const std::vector<int>& labels,
                                           const std::vector<float>* weights) const {
  WM_CHECK_SHAPE(logits.rank() == 2, "selective loss expects (N,C) logits");
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  WM_CHECK(n > 0, "selective loss over empty batch");
  WM_CHECK_SHAPE(g.rank() == 2 && g.dim(0) == n && g.dim(1) == 1,
                 "selection scores must be (N,1), got ", g.shape().to_string());
  WM_CHECK(static_cast<std::int64_t>(labels.size()) == n, "labels size mismatch");
  if (weights != nullptr) WM_CHECK(weights->size() == labels.size(), "weights size mismatch");
  for (int y : labels) WM_CHECK(y >= 0 && y < c, "label out of range: ", y);

  const Tensor probs = softmax_rows(logits);

  // Per-sample weighted losses l_i and aggregate statistics.
  std::vector<float> l(static_cast<std::size_t>(n));
  double sum_g = 0.0;
  double sum_lg = 0.0;
  double sum_l = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    const float w = weights != nullptr ? (*weights)[si] : 1.0f;
    const float* p = probs.data() + i * c;
    const float gi = g[i];
    WM_CHECK(gi >= 0.0f && gi <= 1.0f, "selection score out of [0,1]: ", gi);
    l[si] = -w * std::log(std::max(p[labels[si]], kLogFloor));
    sum_g += gi;
    sum_lg += static_cast<double>(l[si]) * gi;
    sum_l += l[si];
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  const double coverage = sum_g * inv_n;
  const double denom = std::max(sum_g, kCoverageFloor);
  const double selective_risk = sum_lg / denom;
  const double empirical_risk = sum_l * inv_n;
  const double short_fall = std::max(0.0, opts_.target_coverage - coverage);
  const double penalty = opts_.lambda * short_fall * short_fall;
  const double total = opts_.alpha * (selective_risk + penalty) +
                       (1.0 - opts_.alpha) * empirical_risk;

  SelectiveLossResult result;
  result.value = static_cast<float>(total);
  result.selective_risk = static_cast<float>(selective_risk);
  result.empirical_risk = static_cast<float>(empirical_risk);
  result.coverage = static_cast<float>(coverage);
  result.penalty = static_cast<float>(penalty);

  // Gradient w.r.t. logits: dL/dl_i * dl_i/dlogits with
  //   dL/dl_i = alpha * g_i / sum_g + (1-alpha) / N, scaled by w_i inside
  //   dl_i/dlogits = w_i * (softmax - onehot).
  result.grad_logits = Tensor(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    const float w = weights != nullptr ? (*weights)[si] : 1.0f;
    const float gi = g[i];
    const double dl = opts_.alpha * gi / denom + (1.0 - opts_.alpha) * inv_n;
    const float scale = static_cast<float>(dl) * w;
    const float* p = probs.data() + i * c;
    float* gr = result.grad_logits.data() + i * c;
    for (std::int64_t k = 0; k < c; ++k) gr[k] = scale * p[k];
    gr[labels[si]] -= scale;
  }

  // Gradient w.r.t. g_i:
  //   d r(f,g)/dg_i = (l_i - r) / sum_g
  //   d penalty/dg_i = -2 * lambda * max(0, c0 - c) / N
  result.grad_g = Tensor(g.shape());
  const double dpen = -2.0 * opts_.lambda * short_fall * inv_n;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    const double drisk = (l[si] - selective_risk) / denom;
    result.grad_g[i] = static_cast<float>(opts_.alpha * (drisk + dpen));
  }
  return result;
}

}  // namespace wm::nn

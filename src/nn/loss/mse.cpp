#include "nn/loss/mse.hpp"

#include "common/error.hpp"

namespace wm::nn {

LossResult MseLoss::compute(const Tensor& pred, const Tensor& target) {
  WM_CHECK_SHAPE(pred.same_shape(target), "MSE shape mismatch: ",
                 pred.shape().to_string(), " vs ", target.shape().to_string());
  WM_CHECK(pred.numel() > 0, "MSE over empty tensors");
  LossResult result;
  result.grad = Tensor(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* g = result.grad.data();
  const std::int64_t n = pred.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = pp[i] - pt[i];
    total += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv_n;
  }
  result.value = static_cast<float>(total * inv_n);
  return result;
}

}  // namespace wm::nn

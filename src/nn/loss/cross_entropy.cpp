#include "nn/loss/cross_entropy.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/tensor_ops.hpp"

namespace wm::nn {

namespace {
constexpr float kLogFloor = 1e-12f;  // clamp to avoid -inf on p == 0

void check_inputs(const Tensor& logits, const std::vector<int>& labels,
                  const std::vector<float>* weights) {
  WM_CHECK_SHAPE(logits.rank() == 2, "cross-entropy expects (N, C) logits, got ",
                 logits.shape().to_string());
  WM_CHECK(static_cast<std::int64_t>(labels.size()) == logits.dim(0),
           "labels size ", labels.size(), " != batch ", logits.dim(0));
  if (weights != nullptr) {
    WM_CHECK(weights->size() == labels.size(), "weights size mismatch");
  }
  const int nc = static_cast<int>(logits.dim(1));
  for (int y : labels) WM_CHECK(y >= 0 && y < nc, "label ", y, " out of [0,", nc, ")");
}
}  // namespace

LossResult SoftmaxCrossEntropy::compute(const Tensor& logits,
                                        const std::vector<int>& labels,
                                        const std::vector<float>* weights) {
  check_inputs(logits, labels, weights);
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  WM_CHECK(n > 0, "cross-entropy over empty batch");

  const Tensor probs = softmax_rows(logits);
  LossResult result;
  result.grad = Tensor(logits.shape());
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float w = weights != nullptr ? (*weights)[static_cast<std::size_t>(i)] : 1.0f;
    const float* p = probs.data() + i * c;
    float* g = result.grad.data() + i * c;
    const int y = labels[static_cast<std::size_t>(i)];
    total += -static_cast<double>(w) *
             std::log(std::max(p[y], kLogFloor));
    const float scale = w * inv_n;
    for (std::int64_t k = 0; k < c; ++k) g[k] = scale * p[k];
    g[y] -= scale;
  }
  result.value = static_cast<float>(total / static_cast<double>(n));
  return result;
}

std::vector<float> SoftmaxCrossEntropy::per_sample(const Tensor& logits,
                                                   const std::vector<int>& labels) {
  check_inputs(logits, labels, nullptr);
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  const Tensor probs = softmax_rows(logits);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* p = probs.data() + i * c;
    const int y = labels[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = -std::log(std::max(p[y], kLogFloor));
  }
  return out;
}

}  // namespace wm::nn

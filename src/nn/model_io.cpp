#include "nn/model_io.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"
#include "tensor/serialize.hpp"

namespace wm::nn {

namespace {
constexpr char kMagic[4] = {'W', 'M', 'M', '1'};
constexpr std::uint32_t kMaxName = 4096;
}  // namespace

void save_parameters(std::ostream& out, const std::vector<Parameter*>& params) {
  out.write(kMagic, 4);
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    WM_CHECK(p != nullptr, "null parameter");
    const std::uint32_t len = static_cast<std::uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(p->name.data(), len);
    write_tensor(out, p->value);
  }
  if (!out) throw IoError("checkpoint write failed");
}

void load_parameters(std::istream& in, const std::vector<Parameter*>& params) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw IoError("bad checkpoint magic");
  }
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw IoError("truncated checkpoint header");
  if (count != params.size()) {
    throw IoError("checkpoint has " + std::to_string(count) +
                  " parameters, model expects " + std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    std::uint32_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in || len > kMaxName) throw IoError("bad parameter name length");
    std::string name(len, '\0');
    in.read(name.data(), len);
    if (!in) throw IoError("truncated parameter name");
    if (name != p->name) {
      throw IoError("checkpoint parameter '" + name + "' does not match model '" +
                    p->name + "'");
    }
    Tensor t = read_tensor(in);
    if (t.shape() != p->value.shape()) {
      throw IoError("shape mismatch for '" + name + "': checkpoint " +
                    t.shape().to_string() + " vs model " +
                    p->value.shape().to_string());
    }
    p->value = std::move(t);
  }
}

void save_checkpoint(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open checkpoint for writing: " + path);
  save_parameters(out, params);
}

void load_checkpoint(const std::string& path, const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint for reading: " + path);
  load_parameters(in, params);
}

}  // namespace wm::nn

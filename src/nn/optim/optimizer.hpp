// Optimizer interface plus SGD(+momentum) and Adam implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"

namespace wm::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Zeroes all parameter gradients.
  void zero_grad();

  const std::vector<Parameter*>& parameters() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

struct SgdOptions {
  double lr = 0.01;
  double momentum = 0.0;
  double weight_decay = 0.0;  // L2 coefficient added to the gradient
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, const SgdOptions& opts);
  void step() override;

  SgdOptions& options() { return opts_; }

 private:
  SgdOptions opts_;
  std::vector<Tensor> velocity_;
};

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, const AdamOptions& opts);
  void step() override;

  AdamOptions& options() { return opts_; }
  std::int64_t step_count() const { return t_; }

 private:
  AdamOptions opts_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace wm::nn

#include "nn/optim/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wm::nn {

Optimizer::Optimizer(std::vector<Parameter*> params) : params_(std::move(params)) {
  for (const Parameter* p : params_) WM_CHECK(p != nullptr, "null parameter");
}

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->grad.fill(0.0f);
}

Sgd::Sgd(std::vector<Parameter*> params, const SgdOptions& opts)
    : Optimizer(std::move(params)), opts_(opts) {
  WM_CHECK(opts.lr > 0.0, "learning rate must be positive");
  WM_CHECK(opts.momentum >= 0.0 && opts.momentum < 1.0, "bad momentum");
  WM_CHECK(opts.weight_decay >= 0.0, "bad weight decay");
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  const float lr = static_cast<float>(opts_.lr);
  const float mu = static_cast<float>(opts_.momentum);
  const float wd = static_cast<float>(opts_.weight_decay);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter& p = *params_[pi];
    Tensor& vel = velocity_[pi];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* v = vel.data();
    const std::int64_t n = p.value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + wd * w[i];
      v[i] = mu * v[i] + grad;
      w[i] -= lr * v[i];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, const AdamOptions& opts)
    : Optimizer(std::move(params)), opts_(opts) {
  WM_CHECK(opts.lr > 0.0, "learning rate must be positive");
  WM_CHECK(opts.beta1 >= 0.0 && opts.beta1 < 1.0, "bad beta1");
  WM_CHECK(opts.beta2 >= 0.0 && opts.beta2 < 1.0, "bad beta2");
  WM_CHECK(opts.eps > 0.0, "bad eps");
  WM_CHECK(opts.weight_decay >= 0.0, "bad weight decay");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float lr = static_cast<float>(opts_.lr);
  const float b1 = static_cast<float>(opts_.beta1);
  const float b2 = static_cast<float>(opts_.beta2);
  const float eps = static_cast<float>(opts_.eps);
  const float wd = static_cast<float>(opts_.weight_decay);
  const float bc1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter& p = *params_[pi];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::int64_t n = p.value.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + wd * w[i];
      m[i] = b1 * m[i] + (1.0f - b1) * grad;
      v[i] = b2 * v[i] + (1.0f - b2) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

}  // namespace wm::nn

// Checkpointing: saves/loads an ordered parameter list with names.
//
// Format: magic "WMM1", u32 count, then per parameter a u32 name length,
// the name bytes and the tensor (see tensor/serialize.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace wm::nn {

void save_parameters(std::ostream& out, const std::vector<Parameter*>& params);

/// Loads into the given parameters; names and shapes must match in order.
void load_parameters(std::istream& in, const std::vector<Parameter*>& params);

void save_checkpoint(const std::string& path, const std::vector<Parameter*>& params);
void load_checkpoint(const std::string& path, const std::vector<Parameter*>& params);

}  // namespace wm::nn

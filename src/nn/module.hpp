// Base abstractions of the NN framework.
//
// The framework is a layer-graph with explicit forward/backward calls (no
// tape autograd): each Module caches what it needs during forward and
// returns the input gradient from backward. This is sufficient for the
// paper's feed-forward CNNs and keeps every gradient auditable in tests.
//
// Batch layouts: convolutional modules take (N, C, H, W); dense modules take
// (N, F). Flatten converts between the two.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace wm::nn {

/// A learnable tensor and its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

/// A differentiable layer.
class Module {
 public:
  virtual ~Module() = default;

  /// Computes the output for a batch. `training` toggles train-only
  /// behaviour (dropout). Implementations cache activations for backward.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates the loss gradient: accumulates into parameter grads and
  /// returns d(loss)/d(input). Must be called after a matching forward.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Non-learnable persistent state (e.g. BatchNorm running statistics)
  /// that checkpoints must carry alongside the parameters.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Human-readable layer name for checkpoints and error messages.
  virtual std::string name() const = 0;

  /// Zeroes all parameter gradients.
  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.fill(0.0f);
  }

  /// Convenience inference-mode forward.
  Tensor infer(const Tensor& input) { return forward(input, /*training=*/false); }
};

using ModulePtr = std::unique_ptr<Module>;

/// Collects parameters from several modules into one flat list.
std::vector<Parameter*> collect_parameters(
    const std::vector<Module*>& modules);

/// Total number of learnable scalars across parameters.
std::int64_t parameter_count(const std::vector<Parameter*>& params);

}  // namespace wm::nn

// Linear chain of modules.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace wm::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(ModulePtr layer);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Tensor*> buffers() override;
  std::string name() const override;

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i);

 private:
  std::vector<ModulePtr> layers_;
};

/// Convenience factory: make_layer<Conv2d>(opts, rng).
template <typename T, typename... Args>
ModulePtr make_layer(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

}  // namespace wm::nn

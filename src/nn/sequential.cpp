#include "nn/sequential.hpp"

#include <sstream>

#include "common/error.hpp"

namespace wm::nn {

Sequential& Sequential::add(ModulePtr layer) {
  WM_CHECK(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* b : layer->buffers()) out.push_back(b);
  }
  return out;
}

Module& Sequential::layer(std::size_t i) {
  WM_CHECK(i < layers_.size(), "layer index ", i, " out of range ",
           layers_.size());
  return *layers_[i];
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) os << ", ";
    os << layers_[i]->name();
  }
  os << "]";
  return os.str();
}

}  // namespace wm::nn

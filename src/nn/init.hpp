// Weight initialization schemes.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace wm {
class Rng;
}

namespace wm::nn {

/// He (Kaiming) normal: N(0, sqrt(2 / fan_in)); suited to ReLU stacks.
void he_normal(Tensor& w, std::int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

}  // namespace wm::nn

#include "nn/module.hpp"

namespace wm::nn {

std::vector<Parameter*> collect_parameters(const std::vector<Module*>& modules) {
  std::vector<Parameter*> out;
  for (Module* m : modules) {
    for (Parameter* p : m->parameters()) out.push_back(p);
  }
  return out;
}

std::int64_t parameter_count(const std::vector<Parameter*>& params) {
  std::int64_t n = 0;
  for (const Parameter* p : params) n += p->value.numel();
  return n;
}

}  // namespace wm::nn

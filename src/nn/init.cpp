#include "nn/init.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wm::nn {

void he_normal(Tensor& w, std::int64_t fan_in, Rng& rng) {
  WM_CHECK(fan_in > 0, "he_normal needs positive fan_in");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  WM_CHECK(fan_in > 0 && fan_out > 0, "xavier_uniform needs positive fans");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    p[i] = static_cast<float>(rng.uniform(-a, a));
  }
}

}  // namespace wm::nn

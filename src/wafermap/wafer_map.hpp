// The wafer map data type: a square grid of die states on a disc support.
//
// Matches the paper's image encoding: pixel 0 = off-wafer, 127 = passing die,
// 255 = failing die. to_tensor() normalises these to {0, 0.5, 1}.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace wm {

enum class Die : std::uint8_t {
  kOffWafer = 0,
  kPass = 1,
  kFail = 2,
};

class WaferMap {
 public:
  /// Wafer of the given edge size with all on-disc dies passing. The disc is
  /// centred on the grid with radius size/2.
  explicit WaferMap(int size);

  int size() const { return size_; }

  /// True when (row, col) lies on the wafer disc.
  bool on_wafer(int row, int col) const;

  /// Bounds-checked die accessors.
  Die at(int row, int col) const;
  void set(int row, int col, Die die);

  /// Marks a die failed iff it is on the wafer (no-op off-disc/out of grid);
  /// convenient for pattern painters.
  void mark_fail(int row, int col);

  int total_dies() const;  // on-wafer dies
  int fail_count() const;
  int pass_count() const;

  /// Fraction of on-wafer dies that fail (0 when the wafer has no dies).
  double fail_fraction() const;

  /// (1, size, size) tensor with values 0 / 0.5 / 1.
  Tensor to_tensor() const;

  /// Inverse of to_tensor with threshold quantisation: values < 0.25 ->
  /// off-wafer, < 0.75 -> pass, else fail. Off-disc positions are forced to
  /// off-wafer regardless of pixel value (the disc support is structural).
  static WaferMap from_tensor(const Tensor& t);

  /// Raw pixel buffer (row-major, size*size) with the paper's levels
  /// 0 / 127 / 255.
  std::vector<std::uint8_t> to_pixels() const;

  bool operator==(const WaferMap& other) const;
  bool operator!=(const WaferMap& other) const { return !(*this == other); }

  /// Centre coordinate and disc radius in die units.
  double center() const { return (size_ - 1) / 2.0; }
  double radius() const { return size_ / 2.0; }

 private:
  std::size_t index(int row, int col) const;

  int size_;
  std::vector<Die> dies_;
};

}  // namespace wm

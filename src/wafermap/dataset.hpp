// In-memory labelled wafer-map dataset with the batching utilities the
// trainers need.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"
#include "wafermap/defect_types.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm {

class Rng;

struct Sample {
  WaferMap map;
  DefectType label;
  float weight = 1.0f;     // < 1 for synthetic samples (Section III-B)
  bool synthetic = false;  // produced by the augmentation pipeline
};

/// A (N,1,S,S) image batch plus aligned labels and weights.
struct Batch {
  Tensor images;
  std::vector<int> labels;
  std::vector<float> weights;

  std::int64_t size() const { return images.dim(0); }
};

class Dataset {
 public:
  Dataset() = default;

  void add(Sample sample);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const;

  /// All samples' map edge size; throws when mixed sizes were added.
  int map_size() const;

  /// Number of samples per class (enum order).
  std::array<int, kNumDefectTypes> class_counts() const;

  /// In-place Fisher-Yates shuffle.
  void shuffle(Rng& rng);

  /// Splits into (first, second) with `fraction` of each class (stratified,
  /// rounded) going to `first`. Order within splits follows the dataset.
  std::pair<Dataset, Dataset> stratified_split(double fraction, Rng& rng) const;

  /// All samples of one class.
  Dataset filter(DefectType label) const;

  /// All samples except one class (for the Table IV hold-out experiment).
  Dataset without(DefectType label) const;

  /// Merges another dataset in (copies).
  void append(const Dataset& other);

  /// Materialises a batch for the given sample indices.
  Batch make_batch(const std::vector<std::size_t>& indices) const;

  /// Whole-dataset batch (useful for small test sets).
  Batch full_batch() const;

  /// Contiguous mini-batch index ranges of the given size over a shuffled
  /// index vector (last batch may be smaller).
  static std::vector<std::vector<std::size_t>> batch_indices(
      std::size_t dataset_size, std::size_t batch_size, Rng& rng);

 private:
  std::vector<Sample> samples_;
};

}  // namespace wm

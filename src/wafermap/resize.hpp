// Wafer map resizing. WM-811K die grids come in many sizes (26x26 up to
// 300x202); the paper rescales every map to one square resolution before
// feeding the CNN. Nearest-neighbour sampling preserves the 3-level
// encoding exactly.
#pragma once

#include "wafermap/wafer_map.hpp"

namespace wm {

/// Resamples the die pattern onto a `new_size` x `new_size` disc.
/// Positions whose pre-image is off the source wafer become passes.
WaferMap resize_map(const WaferMap& map, int new_size);

}  // namespace wm

#include "wafermap/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wm {

WaferMap rotate(const WaferMap& map, double degrees) {
  const int size = map.size();
  WaferMap out(size);
  const double c = map.center();
  const double theta = -degrees * std::numbers::pi / 180.0;  // inverse map
  const double ct = std::cos(theta);
  const double st = std::sin(theta);
  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      if (!out.on_wafer(row, col)) continue;
      // Rotate the destination coordinate back into the source frame.
      const double y = row - c;
      const double x = col - c;
      const int src_row = static_cast<int>(std::lround(c + y * ct - x * st));
      const int src_col = static_cast<int>(std::lround(c + y * st + x * ct));
      if (map.on_wafer(src_row, src_col)) {
        out.set(row, col, map.at(src_row, src_col));
      } else {
        out.set(row, col, Die::kPass);
      }
    }
  }
  return out;
}

WaferMap flip_horizontal(const WaferMap& map) {
  const int size = map.size();
  WaferMap out(size);
  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      if (!out.on_wafer(row, col)) continue;
      const int src_col = size - 1 - col;
      if (map.on_wafer(row, src_col)) {
        out.set(row, col, map.at(row, src_col));
      }
    }
  }
  return out;
}

WaferMap salt_and_pepper(const WaferMap& map, int flips, Rng& rng) {
  WM_CHECK(flips >= 0, "negative flip count");
  // Collect on-wafer coordinates once, then flip a random subset.
  std::vector<std::pair<int, int>> coords;
  for (int row = 0; row < map.size(); ++row) {
    for (int col = 0; col < map.size(); ++col) {
      if (map.on_wafer(row, col)) coords.emplace_back(row, col);
    }
  }
  WaferMap out = map;
  if (coords.empty()) return out;
  for (int i = 0; i < flips; ++i) {
    const auto& [row, col] =
        coords[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(coords.size()) - 1))];
    out.set(row, col, out.at(row, col) == Die::kFail ? Die::kPass : Die::kFail);
  }
  return out;
}

WaferMap quantize_to_wafer(const Tensor& t) { return WaferMap::from_tensor(t); }

WaferMap quantize_matching_density(const Tensor& t, int target_fails) {
  WM_CHECK(target_fails >= 0, "negative fail target");
  WM_CHECK_SHAPE(t.rank() == 3 && t.dim(0) == 1 && t.dim(1) == t.dim(2),
                 "expected (1, S, S) tensor, got ", t.shape().to_string());
  const int size = static_cast<int>(t.dim(1));
  WaferMap map(size);
  std::vector<std::pair<float, std::pair<int, int>>> on_disc;
  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      if (map.on_wafer(row, col)) {
        on_disc.push_back({t.at(0, row, col), {row, col}});
      }
    }
  }
  const int k = std::min<int>(target_fails, static_cast<int>(on_disc.size()));
  std::partial_sort(on_disc.begin(), on_disc.begin() + k, on_disc.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int i = 0; i < k; ++i) {
    map.set(on_disc[static_cast<std::size_t>(i)].second.first,
            on_disc[static_cast<std::size_t>(i)].second.second, Die::kFail);
  }
  return map;
}

}  // namespace wm

#include "wafermap/resize.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wm {

WaferMap resize_map(const WaferMap& map, int new_size) {
  WM_CHECK(new_size >= 3, "target size must be >= 3, got ", new_size);
  if (new_size == map.size()) return map;
  WaferMap out(new_size);
  const double scale = static_cast<double>(map.size()) / new_size;
  // Sample at destination pixel centres mapped into the source grid.
  for (int row = 0; row < new_size; ++row) {
    for (int col = 0; col < new_size; ++col) {
      if (!out.on_wafer(row, col)) continue;
      const int src_row = static_cast<int>(std::floor((row + 0.5) * scale));
      const int src_col = static_cast<int>(std::floor((col + 0.5) * scale));
      if (map.on_wafer(src_row, src_col)) {
        out.set(row, col, map.at(src_row, src_col));
      }
    }
  }
  return out;
}

}  // namespace wm

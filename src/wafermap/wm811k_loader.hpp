// Loader for real wafer-map datasets in the repository's interchange
// layout: a directory containing `index.csv` with rows
//     <relative-pgm-path>,<class-name>
// (class names as in the paper: Center, Donut, Edge-Loc, Edge-Ring,
// Location, Near-Full, Random, Scratch, None) and one binary PGM per wafer
// using the 0/127/255 encoding. Convert the Kaggle WM-811K pickle to this
// layout with any script; `wm_tool generate` produces the same layout for
// synthetic data, so the whole pipeline can be exercised end-to-end.
#pragma once

#include <string>

#include "wafermap/dataset.hpp"

namespace wm {

struct LoadOptions {
  /// Resample every map to this size (0 keeps native sizes; note that a
  /// Dataset used for training must be single-sized).
  int target_size = 0;
  /// Maximum wafers to load (0 = all); useful for smoke tests.
  int limit = 0;
};

/// Loads `<dir>/index.csv` and the PGMs it references.
/// Throws wm::IoError on missing/malformed files and wm::InvalidArgument on
/// unknown class names.
Dataset load_wafer_directory(const std::string& dir,
                             const LoadOptions& options = {});

/// Writes a dataset into the interchange layout (index.csv + PGMs).
void save_wafer_directory(const std::string& dir, const Dataset& data);

}  // namespace wm

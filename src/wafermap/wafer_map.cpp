#include "wafermap/wafer_map.hpp"

#include <cmath>

#include "common/error.hpp"

namespace wm {

WaferMap::WaferMap(int size) : size_(size) {
  WM_CHECK(size >= 3, "wafer size must be >= 3, got ", size);
  dies_.assign(static_cast<std::size_t>(size) * static_cast<std::size_t>(size),
               Die::kOffWafer);
  const double c = center();
  const double r = radius();
  for (int row = 0; row < size_; ++row) {
    for (int col = 0; col < size_; ++col) {
      const double dr = row - c;
      const double dc = col - c;
      if (std::sqrt(dr * dr + dc * dc) <= r) {
        dies_[index(row, col)] = Die::kPass;
      }
    }
  }
}

std::size_t WaferMap::index(int row, int col) const {
  WM_ASSERT(row >= 0 && row < size_ && col >= 0 && col < size_,
            "die (", row, ",", col, ") outside grid of size ", size_);
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(size_) +
         static_cast<std::size_t>(col);
}

bool WaferMap::on_wafer(int row, int col) const {
  if (row < 0 || row >= size_ || col < 0 || col >= size_) return false;
  return dies_[index(row, col)] != Die::kOffWafer;
}

Die WaferMap::at(int row, int col) const {
  WM_CHECK(row >= 0 && row < size_ && col >= 0 && col < size_,
           "die (", row, ",", col, ") outside grid of size ", size_);
  return dies_[index(row, col)];
}

void WaferMap::set(int row, int col, Die die) {
  WM_CHECK(row >= 0 && row < size_ && col >= 0 && col < size_,
           "die (", row, ",", col, ") outside grid of size ", size_);
  dies_[index(row, col)] = die;
}

void WaferMap::mark_fail(int row, int col) {
  if (row < 0 || row >= size_ || col < 0 || col >= size_) return;
  if (dies_[index(row, col)] != Die::kOffWafer) {
    dies_[index(row, col)] = Die::kFail;
  }
}

int WaferMap::total_dies() const {
  int n = 0;
  for (Die d : dies_) n += (d != Die::kOffWafer);
  return n;
}

int WaferMap::fail_count() const {
  int n = 0;
  for (Die d : dies_) n += (d == Die::kFail);
  return n;
}

int WaferMap::pass_count() const {
  int n = 0;
  for (Die d : dies_) n += (d == Die::kPass);
  return n;
}

double WaferMap::fail_fraction() const {
  const int total = total_dies();
  return total > 0 ? static_cast<double>(fail_count()) / total : 0.0;
}

Tensor WaferMap::to_tensor() const {
  Tensor t(Shape{1, size_, size_});
  float* p = t.data();
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    switch (dies_[i]) {
      case Die::kOffWafer: p[i] = 0.0f; break;
      case Die::kPass: p[i] = 0.5f; break;
      case Die::kFail: p[i] = 1.0f; break;
    }
  }
  return t;
}

WaferMap WaferMap::from_tensor(const Tensor& t) {
  WM_CHECK_SHAPE(t.rank() == 3 && t.dim(0) == 1 && t.dim(1) == t.dim(2),
                 "expected (1, S, S) tensor, got ", t.shape().to_string());
  const int size = static_cast<int>(t.dim(1));
  WaferMap map(size);
  const float* p = t.data();
  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      if (!map.on_wafer(row, col)) continue;  // disc support is structural
      const float v = p[row * size + col];
      map.set(row, col, v < 0.75f ? Die::kPass : Die::kFail);
    }
  }
  return map;
}

std::vector<std::uint8_t> WaferMap::to_pixels() const {
  std::vector<std::uint8_t> px(dies_.size(), 0);
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    switch (dies_[i]) {
      case Die::kOffWafer: px[i] = 0; break;
      case Die::kPass: px[i] = 127; break;
      case Die::kFail: px[i] = 255; break;
    }
  }
  return px;
}

bool WaferMap::operator==(const WaferMap& other) const {
  return size_ == other.size_ && dies_ == other.dies_;
}

}  // namespace wm

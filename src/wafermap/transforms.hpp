// Geometric and noise transforms on wafer maps (Algorithm 1 building blocks).
#pragma once

#include "wafermap/wafer_map.hpp"

namespace wm {

class Rng;

/// Rotates the die pattern by `degrees` counter-clockwise about the wafer
/// centre (nearest-neighbour sampling). The disc support is preserved; dies
/// whose pre-image falls off the wafer become passes.
WaferMap rotate(const WaferMap& map, double degrees);

/// Mirrors the die pattern left-right.
WaferMap flip_horizontal(const WaferMap& map);

/// Flips the labels of `flips` randomly chosen on-wafer dies (pass <-> fail) —
/// the paper's salt-and-pepper die noise (Algorithm 1, line 9).
WaferMap salt_and_pepper(const WaferMap& map, int flips, Rng& rng);

/// Quantises an arbitrary (1,S,S) tensor (e.g. a decoder output) to the three
/// pixel levels and returns the wafer map (Algorithm 1, line 7).
WaferMap quantize_to_wafer(const Tensor& t);

/// Density-matched quantisation: marks the `target_fails` on-disc positions
/// with the highest values as failing. Robust to decoders whose outputs are
/// correctly *ranked* but not calibrated to the fixed 0.75 fail threshold —
/// blurry reconstructions keep the class' failure density instead of
/// collapsing to an all-pass wafer.
WaferMap quantize_matching_density(const Tensor& t, int target_fails);

}  // namespace wm

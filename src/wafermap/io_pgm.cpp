#include "wafermap/io_pgm.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace wm {

void write_pgm(const std::string& path, const WaferMap& map) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open PGM for writing: " + path);
  const auto px = map.to_pixels();
  out << "P5\n" << map.size() << " " << map.size() << "\n255\n";
  out.write(reinterpret_cast<const char*>(px.data()),
            static_cast<std::streamsize>(px.size()));
  if (!out) throw IoError("PGM write failed: " + path);
}

WaferMap read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open PGM for reading: " + path);
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
  in >> magic >> width >> height >> maxval;
  if (!in || magic != "P5" || maxval != 255) throw IoError("bad PGM header: " + path);
  if (width != height || width < 3) throw IoError("PGM is not a square wafer: " + path);
  in.get();  // single whitespace after header
  std::vector<std::uint8_t> px(static_cast<std::size_t>(width) * height);
  in.read(reinterpret_cast<char*>(px.data()),
          static_cast<std::streamsize>(px.size()));
  if (!in) throw IoError("PGM payload truncated: " + path);

  WaferMap map(width);
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      if (!map.on_wafer(row, col)) continue;
      const std::uint8_t v = px[static_cast<std::size_t>(row) * width + col];
      map.set(row, col, v >= 192 ? Die::kFail : Die::kPass);
    }
  }
  return map;
}

std::string ascii_render(const WaferMap& map) {
  std::ostringstream os;
  for (int row = 0; row < map.size(); ++row) {
    for (int col = 0; col < map.size(); ++col) {
      if (!map.on_wafer(row, col)) {
        os << ' ';
      } else {
        os << (map.at(row, col) == Die::kFail ? '#' : '.');
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wm

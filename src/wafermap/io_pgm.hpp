// Rendering helpers: binary PGM export (Fig 1 / Fig 4 artifacts) and a
// terminal-friendly ASCII rendering.
#pragma once

#include <string>

#include "wafermap/wafer_map.hpp"

namespace wm {

/// Writes the map as a binary (P5) PGM image with the paper's pixel levels.
void write_pgm(const std::string& path, const WaferMap& map);

/// Reads back a PGM written by write_pgm.
WaferMap read_pgm(const std::string& path);

/// Renders the map with ' ' off-wafer, '.' pass and '#' fail, one text row
/// per die row.
std::string ascii_render(const WaferMap& map);

}  // namespace wm

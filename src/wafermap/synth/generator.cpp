#include "wafermap/synth/generator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wm::synth {

int DatasetSpec::total() const {
  int n = 0;
  for (int c : class_counts) n += c;
  return n;
}

std::array<int, kNumDefectTypes> table2_training_counts() {
  // Enum order: Center, Donut, Edge-Loc, Edge-Ring, Location, Near-Full,
  // Random, Scratch, None.
  return {2767, 329, 1958, 6802, 1311, 49, 498, 413, 29357};
}

std::array<int, kNumDefectTypes> table2_testing_counts() {
  return {695, 80, 459, 1752, 309, 5, 111, 87, 7373};
}

std::array<int, kNumDefectTypes> scale_counts(
    const std::array<int, kNumDefectTypes>& counts, double scale,
    int min_per_class) {
  WM_CHECK(scale > 0.0, "non-positive scale");
  WM_CHECK(min_per_class >= 0, "negative min_per_class");
  std::array<int, kNumDefectTypes> out{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = std::max(min_per_class,
                      static_cast<int>(std::lround(counts[i] * scale)));
  }
  return out;
}

Dataset generate_dataset(const DatasetSpec& spec, Rng& rng) {
  WM_CHECK(spec.map_size >= 8, "map size too small: ", spec.map_size);
  Dataset out;
  out.reserve(static_cast<std::size_t>(spec.total()));
  for (int cls = 0; cls < kNumDefectTypes; ++cls) {
    const DefectType type = defect_type_from_index(cls);
    const int count = spec.class_counts[static_cast<std::size_t>(cls)];
    WM_CHECK(count >= 0, "negative class count for ", to_string(type));
    for (int i = 0; i < count; ++i) {
      out.add(Sample{.map = generate(type, spec.map_size, rng, spec.morphology),
                     .label = type});
    }
  }
  return out;
}

}  // namespace wm::synth

#include "wafermap/synth/patterns.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wm::synth {

namespace {

/// Per-wafer effective pattern density with multiplicative jitter.
double effective_density(Rng& rng, const MorphologyParams& p) {
  return p.pattern_density * rng.uniform(1.0 - p.density_jitter, 1.0);
}

/// Disc of passing dies with i.i.d. background failures and, sometimes, a
/// small unrelated secondary-damage blob.
WaferMap background(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map(size);
  const double bg = rng.uniform(p.background_lo, p.background_hi);
  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      if (map.on_wafer(row, col) && rng.bernoulli(bg)) {
        map.mark_fail(row, col);
      }
    }
  }
  if (rng.bernoulli(p.distractor_prob)) {
    const double c = map.center();
    const double r = map.radius();
    const double cy = c + rng.uniform(-0.7, 0.7) * r;
    const double cx = c + rng.uniform(-0.7, 0.7) * r;
    const double blob_r = rng.uniform(1.0, 2.2);
    for (int row = 0; row < size; ++row) {
      for (int col = 0; col < size; ++col) {
        const double dr = row - cy;
        const double dc = col - cx;
        if (std::sqrt(dr * dr + dc * dc) <= blob_r && rng.bernoulli(0.8)) {
          map.mark_fail(row, col);
        }
      }
    }
  }
  return map;
}

double die_distance(const WaferMap& map, int row, int col) {
  const double c = map.center();
  const double dr = row - c;
  const double dc = col - c;
  return std::sqrt(dr * dr + dc * dc);
}

double die_angle(const WaferMap& map, int row, int col) {
  const double c = map.center();
  return std::atan2(row - c, col - c);  // [-pi, pi]
}

/// Smallest absolute angular difference, handling wrap-around.
double angle_diff(double a, double b) {
  double d = std::fmod(a - b + 3 * std::numbers::pi, 2 * std::numbers::pi) -
             std::numbers::pi;
  return std::fabs(d);
}

/// Fails every on-wafer die satisfying `pred` with the pattern density.
template <typename Pred>
void paint(WaferMap& map, Rng& rng, double density, Pred pred) {
  for (int row = 0; row < map.size(); ++row) {
    for (int col = 0; col < map.size(); ++col) {
      if (!map.on_wafer(row, col)) continue;
      if (pred(row, col) && rng.bernoulli(density)) map.mark_fail(row, col);
    }
  }
}

}  // namespace

WaferMap generate_none(int size, Rng& rng, const MorphologyParams& p) {
  return background(size, rng, p);
}

WaferMap generate_center(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map = background(size, rng, p);
  const double r = map.radius();
  const double density = effective_density(rng, p);
  const double cluster_r = rng.uniform(0.12, 0.38) * r * p.scale;
  // Off-centre jitter keeps the class from being trivially templated.
  const double jr = rng.normal(0.0, 0.07 * r);
  const double jc = rng.normal(0.0, 0.07 * r);
  const double cy = map.center() + jr;
  const double cx = map.center() + jc;
  paint(map, rng, density, [&](int row, int col) {
    const double dr = row - cy;
    const double dc = col - cx;
    return std::sqrt(dr * dr + dc * dc) <= cluster_r;
  });
  // Soft fringe around the core.
  paint(map, rng, 0.3 * density, [&](int row, int col) {
    const double dr = row - cy;
    const double dc = col - cx;
    const double d = std::sqrt(dr * dr + dc * dc);
    return d > cluster_r && d <= 1.5 * cluster_r;
  });
  return map;
}

WaferMap generate_donut(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map = background(size, rng, p);
  const double r = map.radius();
  const double inner = rng.uniform(0.22, 0.48) * r * p.scale;
  const double outer = inner + rng.uniform(0.13, 0.34) * r * p.scale;
  paint(map, rng, effective_density(rng, p), [&](int row, int col) {
    const double d = die_distance(map, row, col);
    return d >= inner && d <= outer;
  });
  return map;
}

WaferMap generate_edge_loc(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map = background(size, rng, p);
  const double r = map.radius();
  const double theta0 = rng.uniform(-std::numbers::pi, std::numbers::pi);
  const double half_width =
      rng.uniform(0.2, 1.0) * p.scale;  // radians, ~11-57 degrees
  const double depth = std::max(1.5, rng.uniform(0.08, 0.3) * r * p.scale);
  paint(map, rng, effective_density(rng, p), [&](int row, int col) {
    const double d = die_distance(map, row, col);
    if (d < r - depth) return false;
    return angle_diff(die_angle(map, row, col), theta0) <= half_width;
  });
  return map;
}

WaferMap generate_edge_ring(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map = background(size, rng, p);
  const double r = map.radius();
  const double width = std::max(1.2, rng.uniform(0.05, 0.17) * r * p.scale);
  // Most rings are full; some leave a small gap.
  const bool has_gap = rng.bernoulli(0.35);
  const double gap_center = rng.uniform(-std::numbers::pi, std::numbers::pi);
  const double gap_half = rng.uniform(0.1, 0.5);
  paint(map, rng, effective_density(rng, p), [&](int row, int col) {
    if (die_distance(map, row, col) < r - width) return false;
    if (has_gap &&
        angle_diff(die_angle(map, row, col), gap_center) <= gap_half) {
      return false;
    }
    return true;
  });
  return map;
}

WaferMap generate_location(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map = background(size, rng, p);
  const double r = map.radius();
  const double c = map.center();
  const double dist = rng.uniform(0.28, 0.7) * r;
  const double angle = rng.uniform(-std::numbers::pi, std::numbers::pi);
  const double cy = c + dist * std::sin(angle);
  const double cx = c + dist * std::cos(angle);
  const double blob_r = rng.uniform(0.1, 0.27) * r * p.scale;
  paint(map, rng, effective_density(rng, p), [&](int row, int col) {
    const double dr = row - cy;
    const double dc = col - cx;
    return std::sqrt(dr * dr + dc * dc) <= blob_r;
  });
  return map;
}

WaferMap generate_near_full(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map(size);
  const double density = rng.uniform(0.82, 0.95) * std::min(1.0, p.pattern_density + 0.08);
  paint(map, rng, density, [](int, int) { return true; });
  return map;
}

WaferMap generate_random(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map(size);
  // Well above background noise, well below near-full.
  const double density = rng.uniform(0.14, 0.28);
  paint(map, rng, std::min(1.0, density / MorphologyParams::nominal().pattern_density *
                                    p.pattern_density),
        [](int, int) { return true; });
  return map;
}

WaferMap generate_scratch(int size, Rng& rng, const MorphologyParams& p) {
  WaferMap map = background(size, rng, p);
  const double r = map.radius();
  const double c = map.center();
  // Random start within the inner 60% of the disc, random heading, slight
  // curvature — a thin polyline of failing dies.
  double y = c + rng.uniform(-0.6, 0.6) * r;
  double x = c + rng.uniform(-0.6, 0.6) * r;
  double heading = rng.uniform(-std::numbers::pi, std::numbers::pi);
  const double length = rng.uniform(0.7, 1.7) * r * p.scale;
  const double density = effective_density(rng, p);
  const int steps = std::max(3, static_cast<int>(std::lround(length / 0.5)));
  for (int i = 0; i < steps; ++i) {
    const int row = static_cast<int>(std::lround(y));
    const int col = static_cast<int>(std::lround(x));
    if (rng.bernoulli(density)) map.mark_fail(row, col);
    // Occasional 1-die widening keeps the scratch visible after rescaling.
    if (rng.bernoulli(0.25)) map.mark_fail(row + 1, col);
    heading += rng.normal(0.0, 0.08);
    y += 0.5 * std::sin(heading);
    x += 0.5 * std::cos(heading);
  }
  return map;
}

WaferMap generate(DefectType type, int size, Rng& rng,
                  const MorphologyParams& params) {
  switch (type) {
    case DefectType::kCenter: return generate_center(size, rng, params);
    case DefectType::kDonut: return generate_donut(size, rng, params);
    case DefectType::kEdgeLoc: return generate_edge_loc(size, rng, params);
    case DefectType::kEdgeRing: return generate_edge_ring(size, rng, params);
    case DefectType::kLocation: return generate_location(size, rng, params);
    case DefectType::kNearFull: return generate_near_full(size, rng, params);
    case DefectType::kRandom: return generate_random(size, rng, params);
    case DefectType::kScratch: return generate_scratch(size, rng, params);
    case DefectType::kNone: return generate_none(size, rng, params);
  }
  throw InvalidArgument("bad DefectType in generate()");
}

}  // namespace wm::synth

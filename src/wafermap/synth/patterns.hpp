// Parametric synthetic generators for the nine WM-811K defect patterns.
//
// Each generator paints a spatially-coherent failure pattern onto a disc of
// passing dies, on top of i.i.d. background failure noise — the structure the
// paper's CNN exploits. MorphologyParams controls the "process corner": the
// nominal corner stands in for WM-811K's "Train" distribution and the shifted
// corner for its differently-distributed "Test" split (Section IV-A), which
// the concept-shift experiment needs.
#pragma once

#include "wafermap/defect_types.hpp"
#include "wafermap/wafer_map.hpp"

namespace wm {
class Rng;
}

namespace wm::synth {

struct MorphologyParams {
  /// Background (non-pattern) die failure probability range.
  double background_lo = 0.005;
  double background_hi = 0.05;
  /// Failure probability inside the painted pattern (per-wafer jittered by
  /// density_jitter below).
  double pattern_density = 0.9;
  /// Multiplier on pattern spatial extent.
  double scale = 1.0;
  /// Per-wafer multiplicative density jitter: density *= U(1-j, 1).
  double density_jitter = 0.25;
  /// Probability of painting one small unrelated failure blob on top of the
  /// class pattern — real wafers routinely carry secondary damage, which is
  /// what breaks fixed-zone hand-crafted features.
  double distractor_prob = 0.3;

  /// The data distribution all main experiments train and test on.
  static MorphologyParams nominal() { return {}; }

  /// A visibly different process corner: noisier background, weaker and
  /// smaller patterns — but not so extreme that one class masquerades as
  /// another (background stays below the Random class' density floor).
  /// Used only by the concept-shift experiment.
  static MorphologyParams shifted() {
    return {.background_lo = 0.035,
            .background_hi = 0.08,
            .pattern_density = 0.6,
            .scale = 0.7,
            .density_jitter = 0.35,
            .distractor_prob = 0.5};
  }
};

/// Generates one wafer of the given class.
WaferMap generate(DefectType type, int size, Rng& rng,
                  const MorphologyParams& params = MorphologyParams::nominal());

/// Per-class generators (all start from background noise).
WaferMap generate_none(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_center(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_donut(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_edge_loc(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_edge_ring(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_location(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_near_full(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_random(int size, Rng& rng, const MorphologyParams& params);
WaferMap generate_scratch(int size, Rng& rng, const MorphologyParams& params);

}  // namespace wm::synth

// Dataset synthesis mirroring the WM-811K class mix of Table II.
#pragma once

#include <array>

#include "wafermap/dataset.hpp"
#include "wafermap/synth/patterns.hpp"

namespace wm::synth {

struct DatasetSpec {
  int map_size = 32;
  std::array<int, kNumDefectTypes> class_counts{};  // samples per class
  MorphologyParams morphology = MorphologyParams::nominal();

  int total() const;
};

/// The paper's Table II "Training" column (43,484 wafers total).
std::array<int, kNumDefectTypes> table2_training_counts();

/// The paper's Table II "Testing" column (10,871 wafers total).
std::array<int, kNumDefectTypes> table2_testing_counts();

/// Scales a count vector by `scale` (each class rounded, at least
/// min_per_class so rare classes such as Near-Full never disappear).
std::array<int, kNumDefectTypes> scale_counts(
    const std::array<int, kNumDefectTypes>& counts, double scale,
    int min_per_class = 3);

/// Generates a dataset with the spec's per-class counts. Samples are emitted
/// class-by-class; call Dataset::shuffle for a random order.
Dataset generate_dataset(const DatasetSpec& spec, Rng& rng);

}  // namespace wm::synth

#include "wafermap/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wm {

void Dataset::add(Sample sample) { samples_.push_back(std::move(sample)); }

const Sample& Dataset::operator[](std::size_t i) const {
  WM_CHECK(i < samples_.size(), "sample index ", i, " out of range ",
           samples_.size());
  return samples_[i];
}

int Dataset::map_size() const {
  WM_CHECK(!samples_.empty(), "map_size of empty dataset");
  const int size = samples_.front().map.size();
  for (const Sample& s : samples_) {
    WM_CHECK(s.map.size() == size, "mixed map sizes in dataset: ", size,
             " vs ", s.map.size());
  }
  return size;
}

std::array<int, kNumDefectTypes> Dataset::class_counts() const {
  std::array<int, kNumDefectTypes> counts{};
  for (const Sample& s : samples_) {
    counts[static_cast<std::size_t>(s.label)]++;
  }
  return counts;
}

void Dataset::shuffle(Rng& rng) { rng.shuffle(samples_); }

std::pair<Dataset, Dataset> Dataset::stratified_split(double fraction,
                                                      Rng& rng) const {
  WM_CHECK(fraction >= 0.0 && fraction <= 1.0, "split fraction out of [0,1]: ",
           fraction);
  // Shuffle indices per class, then cut each class at the fraction.
  std::array<std::vector<std::size_t>, kNumDefectTypes> per_class;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    per_class[static_cast<std::size_t>(samples_[i].label)].push_back(i);
  }
  Dataset first;
  Dataset second;
  for (auto& indices : per_class) {
    rng.shuffle(indices);
    const std::size_t cut = static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(indices.size())));
    for (std::size_t k = 0; k < indices.size(); ++k) {
      (k < cut ? first : second).add(samples_[indices[k]]);
    }
  }
  return {std::move(first), std::move(second)};
}

Dataset Dataset::filter(DefectType label) const {
  Dataset out;
  for (const Sample& s : samples_) {
    if (s.label == label) out.add(s);
  }
  return out;
}

Dataset Dataset::without(DefectType label) const {
  Dataset out;
  for (const Sample& s : samples_) {
    if (s.label != label) out.add(s);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

Batch Dataset::make_batch(const std::vector<std::size_t>& indices) const {
  WM_CHECK(!indices.empty(), "empty batch");
  const int size = map_size();
  Batch batch;
  batch.images = Tensor(Shape{static_cast<std::int64_t>(indices.size()), 1,
                              size, size});
  batch.labels.reserve(indices.size());
  batch.weights.reserve(indices.size());
  const std::int64_t image_elems = static_cast<std::int64_t>(size) * size;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const Sample& s = (*this)[indices[k]];
    const Tensor img = s.map.to_tensor();
    std::memcpy(batch.images.data() + static_cast<std::int64_t>(k) * image_elems,
                img.data(), static_cast<std::size_t>(image_elems) * sizeof(float));
    batch.labels.push_back(static_cast<int>(s.label));
    batch.weights.push_back(s.weight);
  }
  return batch;
}

Batch Dataset::full_batch() const {
  std::vector<std::size_t> idx(samples_.size());
  std::iota(idx.begin(), idx.end(), 0u);
  return make_batch(idx);
}

std::vector<std::vector<std::size_t>> Dataset::batch_indices(
    std::size_t dataset_size, std::size_t batch_size, Rng& rng) {
  WM_CHECK(batch_size > 0, "batch size must be positive");
  std::vector<std::size_t> order(dataset_size);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < dataset_size; start += batch_size) {
    const std::size_t end = std::min(dataset_size, start + batch_size);
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                         order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace wm

// The nine WM-811K defect pattern classes (paper Fig 1).
#pragma once

#include <array>
#include <string>

namespace wm {

enum class DefectType : int {
  kCenter = 0,
  kDonut = 1,
  kEdgeLoc = 2,
  kEdgeRing = 3,
  kLocation = 4,
  kNearFull = 5,
  kRandom = 6,
  kScratch = 7,
  kNone = 8,
};

inline constexpr int kNumDefectTypes = 9;

/// All classes in enum order (the row order used by the paper's tables).
const std::array<DefectType, kNumDefectTypes>& all_defect_types();

/// Human-readable name, e.g. "Edge-Ring".
std::string to_string(DefectType type);

/// Inverse of to_string; throws wm::InvalidArgument on unknown names.
DefectType defect_type_from_string(const std::string& name);

/// Bounds-checked int -> enum conversion.
DefectType defect_type_from_index(int index);

}  // namespace wm

#include "wafermap/defect_types.hpp"

#include "common/error.hpp"

namespace wm {

namespace {
const std::array<const char*, kNumDefectTypes> kNames = {
    "Center", "Donut", "Edge-Loc", "Edge-Ring", "Location",
    "Near-Full", "Random", "Scratch", "None"};
}  // namespace

const std::array<DefectType, kNumDefectTypes>& all_defect_types() {
  static const std::array<DefectType, kNumDefectTypes> kAll = {
      DefectType::kCenter,   DefectType::kDonut,  DefectType::kEdgeLoc,
      DefectType::kEdgeRing, DefectType::kLocation, DefectType::kNearFull,
      DefectType::kRandom,   DefectType::kScratch, DefectType::kNone};
  return kAll;
}

std::string to_string(DefectType type) {
  const int i = static_cast<int>(type);
  WM_CHECK(i >= 0 && i < kNumDefectTypes, "bad DefectType value ", i);
  return kNames[static_cast<std::size_t>(i)];
}

DefectType defect_type_from_string(const std::string& name) {
  for (int i = 0; i < kNumDefectTypes; ++i) {
    if (name == kNames[static_cast<std::size_t>(i)]) {
      return static_cast<DefectType>(i);
    }
  }
  throw InvalidArgument("unknown defect type name: " + name);
}

DefectType defect_type_from_index(int index) {
  WM_CHECK(index >= 0 && index < kNumDefectTypes, "defect index out of range: ",
           index);
  return static_cast<DefectType>(index);
}

}  // namespace wm

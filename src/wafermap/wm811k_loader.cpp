#include "wafermap/wm811k_loader.hpp"

#include <filesystem>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "wafermap/io_pgm.hpp"
#include "wafermap/resize.hpp"

namespace wm {

namespace fs = std::filesystem;

Dataset load_wafer_directory(const std::string& dir, const LoadOptions& options) {
  WM_CHECK(options.target_size == 0 || options.target_size >= 3,
           "bad target size ", options.target_size);
  WM_CHECK(options.limit >= 0, "negative limit");
  const fs::path root(dir);
  const fs::path index = root / "index.csv";
  if (!fs::exists(index)) {
    throw IoError("no index.csv under " + dir);
  }
  const auto rows = read_csv(index.string());
  Dataset out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() == 1 && trim(row[0]).empty()) continue;
    if (row.size() != 2) {
      throw IoError("malformed index row in " + index.string() +
                    " (want <path>,<class>)");
    }
    const std::string rel = trim(row[0]);
    if (rel == "path") continue;  // optional header
    const DefectType label = defect_type_from_string(trim(row[1]));
    WaferMap map = read_pgm((root / rel).string());
    if (options.target_size != 0 && map.size() != options.target_size) {
      map = resize_map(map, options.target_size);
    }
    out.add(Sample{.map = std::move(map), .label = label});
    if (options.limit > 0 && static_cast<int>(out.size()) >= options.limit) break;
  }
  WM_CHECK(!out.empty(), "no wafers loaded from ", dir);
  return out;
}

void save_wafer_directory(const std::string& dir, const Dataset& data) {
  WM_CHECK(!data.empty(), "refusing to save an empty dataset");
  const fs::path root(dir);
  fs::create_directories(root);
  CsvWriter index((root / "index.csv").string());
  index.write_row({"path", "class"});
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::string name = "wafer_" + std::to_string(i) + ".pgm";
    write_pgm((root / name).string(), data[i].map);
    index.write_row({name, to_string(data[i].label)});
  }
}

}  // namespace wm
